"""Communicator abstraction and fault-tolerant SPMD process harness.

Two implementations of the same protocol:

* :class:`SerialComm` -- ``size == 1``; collective operations degenerate to
  identity.  This is the default communicator for every algorithm in the
  library, so nothing here forces callers to pay process-spawn costs.
* :class:`PipeComm` -- each rank is an OS process (``multiprocessing``,
  default start method) holding one duplex
  :class:`multiprocessing.connection.Connection` to every other rank.
  Collectives are implemented with the classic linear/rooted algorithms,
  which is plenty for the rank counts (2--8) exercised here.

Unlike the seed implementation, whose ``recv`` blocked indefinitely (so a
dead or hung rank deadlocked every survivor), :class:`PipeComm` now runs a
small reliable-delivery protocol with bounded waits everywhere:

* every payload is pickled and framed with a sequence number and CRC32;
* every DATA frame is acknowledged; the receiver NAKs corrupt frames and
  the sender resends (bounded by ``max_resends``), which also recovers
  silently dropped messages via an ack-timeout retransmit;
* transient ``OSError`` on a pipe operation is retried with exponential
  backoff; connection loss (EOF / broken pipe -- the OS closes a dead
  rank's pipe ends, so death is usually detected instantly) and deadline
  expiry raise :class:`~repro.parallel.faults.RankFailureError` instead
  of blocking forever;
* a :class:`~repro.parallel.faults.RankFaultInjector` can be hooked into
  the frame path to inject crash / hang / drop / bit-flip / transient
  faults for chaos testing, mirroring the disk write hook of PR 1.

On top of the strict collectives (which raise ``RankFailureError`` on any
lost peer), the ``*_degraded`` collectives implement graceful
degradation for root-coordinated algorithms: rank 0 absorbs peer
failures, keeps going with the survivors, and piggybacks the lost-rank
set on its broadcasts so every survivor converges on the same view of
the membership.  Loss of rank 0 itself is always fatal (fail loudly).

One caveat: pipe writes larger than the kernel buffer to a peer that is
*alive but not draining* can block in the OS; the ``run_spmd`` parent
deadline is the backstop that reaps such ranks.

Payloads are arbitrary picklable objects; NumPy arrays ride through
pickle protocol 5 efficiently.
"""

from __future__ import annotations

import operator
import pickle
import struct
import time
import traceback
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from functools import reduce as _functools_reduce
from multiprocessing import Pipe, get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Iterator, Sequence

from repro.parallel.faults import DROP, CommEvent, RankFailureError
from repro.telemetry.tracer import get_telemetry

__all__ = ["Comm", "SerialComm", "PipeComm", "RankOutcome", "run_spmd"]


class Comm:
    """Protocol for a communicator.

    Concrete subclasses provide :attr:`rank`, :attr:`size` and point-to-point
    ``send``/``recv``; the collectives below are implemented generically on
    top of those, with the linear algorithms rooted at rank 0.
    """

    rank: int
    size: int
    #: pipeline phase label, settable via :meth:`phase`; used by fault
    #: injection targeting and failure diagnostics.
    _phase: str = ""

    # -- point to point -------------------------------------------------
    def send(self, obj: Any, dest: int) -> None:
        raise NotImplementedError

    def recv(self, source: int) -> Any:
        raise NotImplementedError

    # -- phase / failure bookkeeping -------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Label subsequent operations as belonging to pipeline ``name``."""
        previous = self._phase
        self._phase = name
        try:
            yield
        finally:
            self._phase = previous

    @property
    def lost_ranks(self) -> tuple[int, ...]:
        """Ranks this communicator has detected as lost (sorted)."""
        return ()

    def note_lost(self, ranks: Sequence[int],
                  reason: str = "reported by root") -> None:
        """Record peer failures learned out-of-band (e.g. from a root
        broadcast); a no-op for communicators without peers."""

    # -- collectives -----------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        # Linear barrier: everyone pings 0, then 0 pongs everyone.
        if self.size == 1:
            return
        if self.rank == 0:
            for src in range(1, self.size):
                self.recv(src)
            for dst in range(1, self.size):
                self.send(None, dst)
        else:
            self.send(None, 0)
            self.recv(0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks; returns the object."""
        if self.size == 1:
            return obj
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst)
            return obj
        return self.recv(root)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one element of ``objs`` (length ``size``) to each rank."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items at root")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst)
            return objs[root]
        return self.recv(root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object from every rank to ``root`` (``None`` elsewhere)."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src)
            return out
        self.send(obj, root)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to rank 0, then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = operator.add,
               root: int = 0) -> Any | None:
        """Reduce objects from all ranks with ``op`` at ``root``.

        ``op`` must be associative; application order is by ascending rank.
        Returns the reduction at ``root`` and ``None`` elsewhere.
        """
        gathered = self.gather(obj, root=root)
        if gathered is None:
            return None
        return _functools_reduce(op, gathered)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Reduce with ``op`` and broadcast the result to every rank."""
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    # -- degraded collectives (root-coordinated, failure-absorbing) -------
    #
    # The defaults delegate to the strict versions, so SerialComm and any
    # custom failure-free communicator satisfy the protocol for free;
    # PipeComm overrides them with failure-absorbing implementations.

    def gather_degraded(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Like :meth:`gather`, but the root absorbs peer failures: lost
        ranks contribute ``None`` and are recorded in :attr:`lost_ranks`."""
        return self.gather(obj, root=root)

    def bcast_degraded(self, obj: Any, root: int = 0) -> Any:
        """Like :meth:`bcast`, but the root skips ranks already known lost
        and absorbs fresh send failures."""
        return self.bcast(obj, root=root)

    def allreduce_degraded(self, obj: Any,
                           op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Like :meth:`allreduce`, reduced over the *surviving* ranks.

        The broadcast payload piggybacks the root's lost-rank set, so all
        survivors leave the call agreeing on the membership.
        """
        return self.allreduce(obj, op=op)


class SerialComm(Comm):
    """Single-process communicator: all collectives are identities."""

    def __init__(self) -> None:
        self.rank = 0
        self.size = 1

    def send(self, obj: Any, dest: int) -> None:  # pragma: no cover - guarded
        raise RuntimeError("SerialComm has no peers to send to")

    def recv(self, source: int) -> Any:  # pragma: no cover - guarded
        raise RuntimeError("SerialComm has no peers to receive from")


# -- framed reliable-delivery protocol over pipes ------------------------

_DATA, _ACK, _NAK, _HB = 1, 2, 3, 4
#: frame header: kind, sequence number, CRC32 of the payload.
_FRAME = struct.Struct("<BII")

# -- pickle protocol-5 out-of-band serialisation -------------------------
#
# Large NumPy payloads dominate the wire cost of parallel encode.  Plain
# ``pickle.dumps`` copies every array into the pickle stream; protocol 5
# with a ``buffer_callback`` instead emits the array *metadata* in the
# stream and hands the raw buffers out separately, so assembly is a
# single ``b"".join`` over the original memory (zero-copy on the send
# side).  Wire layout, distinguished from a plain pickle stream by its
# first byte (pickle streams always start with 0x80):
#
#     0x05  n_buffers:u32  head_len:u32  buf_lens:u64[n_buffers]
#     pickle_head:bytes  raw_buffer_bytes...
#
# ``_loads`` copies the buffer region into one writable ``bytearray`` and
# reconstructs arrays as views into it, so the result owns its memory
# without a second per-array copy.

_OOB_MAGIC = 0x05
_OOB_HEAD = struct.Struct("<II")


def _dumps(obj: Any) -> bytes:
    buffers: list[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        return head
    try:
        raws = [b.raw() for b in buffers]
    except BufferError:
        # Non-contiguous out-of-band buffer: fall back to in-band pickle.
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    lens = struct.pack(f"<{len(raws)}Q", *(r.nbytes for r in raws))
    return b"".join(
        [bytes([_OOB_MAGIC]), _OOB_HEAD.pack(len(raws), len(head)),
         lens, head, *raws])


def _loads(data: bytes) -> Any:
    if not data or data[0] != _OOB_MAGIC:
        return pickle.loads(data)
    n_buffers, head_len = _OOB_HEAD.unpack_from(data, 1)
    off = 1 + _OOB_HEAD.size
    lens = struct.unpack_from(f"<{n_buffers}Q", data, off)
    off += 8 * n_buffers
    head = bytes(data[off : off + head_len])
    off += head_len
    # One writable copy backs every reconstructed array.
    region = bytearray(data[off:])
    view = memoryview(region)
    buffers = []
    pos = 0
    for length in lens:
        buffers.append(view[pos : pos + length])
        pos += length
    return pickle.loads(head, buffers=buffers)

#: histogram buckets for failure-detection latency (seconds).
_DETECT_BUCKETS = (0.01, 0.05, 0.25, 1.0, 2.0, 5.0, 15.0, 60.0)


class PipeComm(Comm):
    """Fault-tolerant communicator over a full mesh of duplex pipes.

    Built by :func:`run_spmd`; constructable directly (one instance per
    process or thread, plus a ``links`` dict of peer connections) for
    in-process protocol tests.

    Parameters
    ----------
    timeout:
        Default per-message deadline (seconds) for both ``recv`` and the
        acknowledgement wait in ``send``.  Expiry raises
        :class:`RankFailureError` -- the failure detector of last resort
        when pipe EOF does not surface a dead peer.
    resend_wait:
        Ack-timeout after which an unacknowledged DATA frame is
        retransmitted (recovers dropped messages).  Defaults to a quarter
        of ``timeout``, clamped to [0.05, 1.0].
    max_resends:
        Retransmission budget per message (silence- and NAK-triggered
        combined); exhausting it on NAKs marks the channel corrupt.
    transient_retries / backoff_base:
        Retry budget and initial exponential-backoff delay for transient
        ``OSError`` on pipe operations.
    fault_injector:
        Optional :class:`~repro.parallel.faults.RankFaultInjector` whose
        ``apply`` hook sees every frame transmission and receive wait.
    attempt:
        ``run_spmd`` respawn attempt number, exposed to rank functions
        and fault hooks.
    """

    def __init__(self, rank: int, size: int, links: dict[int, Any], *,
                 timeout: float = 30.0,
                 resend_wait: float | None = None,
                 max_resends: int = 3,
                 transient_retries: int = 4,
                 backoff_base: float = 0.05,
                 fault_injector=None,
                 attempt: int = 0) -> None:
        self.rank = rank
        self.size = size
        self._links = links
        self.timeout = float(timeout)
        if resend_wait is None:
            resend_wait = min(max(self.timeout / 4.0, 0.05), 1.0)
        self.resend_wait = float(resend_wait)
        self.max_resends = int(max_resends)
        self.transient_retries = int(transient_retries)
        self.backoff_base = float(backoff_base)
        self.attempt = int(attempt)
        self._injector = fault_injector
        self._send_seq = {r: 0 for r in links}
        #: last delivered DATA sequence number per source (for dedup).
        self._recv_seq = {r: 0 for r in links}
        #: in-order, already-acknowledged payloads awaiting a ``recv`` call.
        self._inbox: dict[int, list[bytes]] = {r: [] for r in links}
        #: (kind, seq) ACK/NAK verdicts read while servicing links.
        self._ctrl: dict[int, list[tuple[int, int]]] = {r: [] for r in links}
        #: consecutive resend requests per peer, reset on clean delivery.
        self._nak_sent = {r: 0 for r in links}
        #: monotonic time of the last frame (any kind) heard per peer --
        #: the failure detector measures *silence*, not message absence.
        self._last_heard = {r: 0.0 for r in links}
        self._hb_interval = self.resend_wait / 2.0
        self._last_hb = 0.0
        self._dead: dict[int, str] = {}

    # -- failure bookkeeping ---------------------------------------------

    @property
    def lost_ranks(self) -> tuple[int, ...]:
        return tuple(sorted(self._dead))

    def note_lost(self, ranks: Sequence[int],
                  reason: str = "reported by root") -> None:
        for r in ranks:
            if r != self.rank:
                self._dead.setdefault(int(r), reason)

    def _mark_failed(self, peer: int, reason: str,
                     detect_s: float | None = None) -> RankFailureError:
        """Record a peer loss (first detection emits telemetry) and build
        the error for the caller to raise."""
        if peer not in self._dead:
            self._dead[peer] = reason
            tel = get_telemetry()
            tel.metrics.counter("comm.rank_failures").inc()
            if detect_s is not None:
                tel.metrics.histogram("comm.failure_detect_s",
                                      buckets=_DETECT_BUCKETS).observe(detect_s)
            with tel.span("comm.rank_failure", peer=peer, rank=self.rank,
                          phase=self._phase, reason=reason,
                          detect_s=round(detect_s, 6) if detect_s else 0.0):
                pass
        return RankFailureError(peer, reason, self._phase)

    def _check_alive(self, peer: int) -> None:
        if peer in self._dead:
            raise RankFailureError(peer, self._dead[peer], self._phase)

    # -- low-level pipe operations with transient-error retry -------------

    def _with_retries(self, peer: int, fn: Callable[[], Any], what: str,
                      t0: float) -> Any:
        delay = self.backoff_base
        for i in range(self.transient_retries + 1):
            try:
                return fn()
            except (BrokenPipeError, ConnectionResetError, EOFError) as exc:
                raise self._mark_failed(
                    peer, f"connection lost during {what}: {exc!r}",
                    time.monotonic() - t0)
            except OSError as exc:
                if i == self.transient_retries:
                    raise self._mark_failed(
                        peer, f"persistent I/O error during {what}: {exc!r}",
                        time.monotonic() - t0)
                get_telemetry().metrics.counter("comm.transient_retries").inc()
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _read_frame(self, conn: Any, peer: int,
                    t0: float) -> tuple[int, int, int, bytes]:
        buf = self._with_retries(peer, conn.recv_bytes, "recv", t0)
        if len(buf) < _FRAME.size:  # pragma: no cover - frames keep length
            return (0, 0, 0, b"")
        kind, seq, crc = _FRAME.unpack_from(buf)
        return kind, seq, crc, buf[_FRAME.size:]

    def _send_control(self, conn: Any, peer: int, kind: int, seq: int,
                      t0: float) -> None:
        frame = _FRAME.pack(kind, seq, 0)
        self._with_retries(peer, lambda: conn.send_bytes(frame), "ack", t0)

    # -- frame intake ------------------------------------------------------

    def _intake(self, conn: Any, peer: int, t0: float) -> None:
        """Read and process one frame from ``peer``.

        In-order valid DATA is acknowledged immediately and queued for
        ``recv``; duplicates are re-acknowledged (their ACK was lost);
        out-of-order or corrupt frames trigger a bounded NAK/resend cycle;
        ACK/NAK verdicts are queued for the sender side.
        """
        kind, rseq, crc, payload = self._read_frame(conn, peer, t0)
        self._last_heard[peer] = time.monotonic()
        if kind in (_ACK, _NAK):
            self._ctrl[peer].append((kind, rseq))
            return
        if kind != _DATA:
            return  # heartbeat (or unknown): liveness evidence only
        if rseq <= self._recv_seq[peer]:
            self._send_control(conn, peer, _ACK, rseq, t0)
            return
        expect = self._recv_seq[peer] + 1
        if rseq != expect or zlib.crc32(payload) != crc:
            get_telemetry().metrics.counter("comm.crc_errors").inc()
            self._nak_sent[peer] += 1
            if self._nak_sent[peer] > self.max_resends:
                raise self._mark_failed(
                    peer, f"message {expect} still corrupt after "
                          f"{self._nak_sent[peer]} resend requests",
                    time.monotonic() - t0)
            self._send_control(conn, peer, _NAK, expect, t0)
            return
        self._send_control(conn, peer, _ACK, rseq, t0)
        self._recv_seq[peer] = rseq
        self._nak_sent[peer] = 0
        self._inbox[peer].append(payload)

    def _service_links(self, wait_s: float, t0: float, focus: int) -> None:
        """Wait up to ``wait_s`` for traffic on any live link and process it.

        Every blocking wait in the protocol funnels through here, so a rank
        stuck in a long ``recv`` still feeds ACKs to its *other* live
        peers.  Without this, a root waiting out a dead rank's deadline in
        a linear gather would starve the remaining senders of ACKs for a
        full ``timeout`` and they would spuriously declare the root lost.
        Failures of peers other than ``focus`` are recorded, not raised.

        While waiting, a tiny heartbeat frame goes to every live peer each
        ``_hb_interval``, so peers watching *us* see liveness evidence even
        when we have nothing to say (e.g. while we absorb a dead rank's
        silence).  Peer silence therefore only accumulates across genuine
        death, hangs, and compute phases -- which is why ``timeout`` must
        exceed the longest single compute phase of the algorithm.
        """
        conns = {c: p for p, c in self._links.items() if p not in self._dead}
        now = time.monotonic()
        if now - self._last_hb >= self._hb_interval:
            self._last_hb = now
            for conn, peer in list(conns.items()):
                try:
                    self._send_control(conn, peer, _HB, 0, t0)
                except RankFailureError:
                    del conns[conn]
                    if peer == focus:
                        raise
        if not conns:
            if wait_s > 0:
                time.sleep(min(wait_s, 0.005))
            return
        try:
            ready = _conn_wait(list(conns), max(wait_s, 0.0))
        except OSError:  # pragma: no cover - transient wait failure
            time.sleep(min(max(wait_s, 0.0), self.backoff_base))
            return
        for conn in ready:
            peer = conns[conn]
            try:
                self._intake(conn, peer, t0)
            except RankFailureError:
                if peer == focus:
                    raise

    # -- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, timeout: float | None = None) -> None:
        if dest == self.rank:
            raise ValueError("cannot send to self")
        self._check_alive(dest)
        conn = self._links[dest]
        self._send_seq[dest] += 1
        seq = self._send_seq[dest]
        payload = _dumps(obj)
        frame = _FRAME.pack(_DATA, seq, zlib.crc32(payload)) + payload
        t0 = time.monotonic()
        limit = self.timeout if timeout is None else timeout
        transmissions = 0
        want_send = True
        while True:
            if want_send:
                def transmit() -> None:
                    data: Any = frame
                    if self._injector is not None:
                        out = self._injector.apply(CommEvent(
                            "send", dest, self._phase, self.attempt, frame))
                        if out is DROP:
                            return
                        if out is not None:
                            data = out
                    conn.send_bytes(data)
                self._with_retries(dest, transmit, "send", t0)
                transmissions += 1
                if transmissions > 1:
                    get_telemetry().metrics.counter("comm.resends").inc()
            verdict = self._await_ack(dest, seq, limit, t0)
            if verdict == "ack":
                return
            if verdict == "nak" and transmissions > self.max_resends:
                raise self._mark_failed(
                    dest, f"message {seq} still rejected after "
                          f"{transmissions} transmissions",
                    time.monotonic() - t0)
            # Silence past the resend budget: keep waiting (a slow but
            # live peer must not be declared dead before the deadline).
            want_send = transmissions <= self.max_resends

    def _await_ack(self, dest: int, seq: int, limit: float,
                   t0: float) -> str:
        """Wait for the ACK/NAK of message ``seq`` sent to ``dest``.

        Returns ``"ack"`` / ``"nak"``, or ``"silent"`` after
        ``resend_wait`` with no verdict; raises once ``dest`` has been
        silent (no frames of any kind, heartbeats included) for ``limit``.
        """
        wait_until = time.monotonic() + self.resend_wait
        while True:
            verdict = None
            for kind, rseq in self._ctrl[dest]:
                if rseq == seq:
                    verdict = "ack" if kind == _ACK else "nak"
                    break
            # Verdicts for earlier messages are stale: drop them too.
            self._ctrl[dest] = [kn for kn in self._ctrl[dest]
                                if kn[1] > seq]
            if verdict is not None:
                return verdict
            now = time.monotonic()
            deadline = max(t0, self._last_heard[dest]) + limit
            if now >= deadline:
                raise self._mark_failed(
                    dest, f"rank {dest} silent for {now - deadline + limit:.2f}s"
                          f" awaiting acknowledgement of message {seq}",
                    now - t0)
            if now >= wait_until:
                return "silent"
            if dest in self._dead:
                raise RankFailureError(dest, self._dead[dest], self._phase)
            self._service_links(min(wait_until, deadline) - now, t0,
                                focus=dest)

    def recv(self, source: int, timeout: float | None = None) -> Any:
        if source == self.rank:
            raise ValueError("cannot receive from self")
        self._check_alive(source)
        t0 = time.monotonic()
        limit = self.timeout if timeout is None else timeout
        if self._injector is not None:
            self._with_retries(
                source,
                lambda: self._injector.apply(CommEvent(
                    "recv", source, self._phase, self.attempt)),
                "recv", t0)
        while True:
            if self._inbox[source]:
                return _loads(self._inbox[source].pop(0))
            self._check_alive(source)
            now = time.monotonic()
            deadline = max(t0, self._last_heard[source]) + limit
            if now >= deadline:
                raise self._mark_failed(
                    source, f"rank {source} silent for {limit:.2f}s waiting"
                            f" for message {self._recv_seq[source] + 1}",
                    now - t0)
            self._service_links(min(deadline - now, self.resend_wait), t0,
                                focus=source)

    # -- degraded collectives ----------------------------------------------

    def gather_degraded(self, obj: Any, root: int = 0) -> list[Any] | None:
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src == root or src in self._dead:
                    continue
                try:
                    out[src] = self.recv(src)
                except RankFailureError:
                    pass  # recorded in _dead; survivor keeps going
            return out
        # Root loss is fatal: there is nobody left to coordinate recovery.
        self.send(obj, root)
        return None

    def bcast_degraded(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for dst in range(self.size):
                if dst == root or dst in self._dead:
                    continue
                try:
                    self.send(obj, dst)
                except RankFailureError:
                    pass
            return obj
        return self.recv(root)

    def allreduce_degraded(self, obj: Any,
                           op: Callable[[Any, Any], Any] = operator.add) -> Any:
        if self.rank == 0:
            gathered = self.gather_degraded(obj, root=0)
            values = [gathered[r] for r in range(self.size)
                      if r not in self._dead]
            value = _functools_reduce(op, values)
            self.bcast_degraded((value, self.lost_ranks), root=0)
            return value
        self.send(obj, 0)
        value, lost = self.recv(0)
        self.note_lost(lost)
        return value


@dataclass
class _RankResult:
    """Wire format a rank process reports back to the parent."""

    rank: int
    value: Any = None
    error: str | None = None
    traceback: str | None = None


@dataclass
class RankOutcome:
    """Per-rank outcome of a non-strict :func:`run_spmd` run.

    ``error`` carries ``"ExcType: message"`` and ``traceback`` the full
    formatted traceback from the rank process; ``timed_out`` is set when
    the rank produced nothing before the parent deadline (it was then
    terminated and reaped).
    """

    rank: int
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out


def _spmd_child(rank: int, size: int, all_links: list[dict[int, Any]],
                result_conns: list[Any], fn: Callable[..., Any],
                args: tuple, kwargs: dict, comm_kwargs: dict,
                injector, attempt: int) -> None:
    # Close every inherited connection that belongs to another rank.  This
    # is what makes failure detection fast: once only the owning process
    # holds a pipe end, that process dying closes the pipe and peers see
    # EOF immediately instead of waiting out their deadline.
    for r, linkmap in enumerate(all_links):
        if r != rank:
            for conn in linkmap.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
    for r, conn in enumerate(result_conns):
        if r != rank:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
    result_conn = result_conns[rank]
    comm = PipeComm(rank, size, all_links[rank], fault_injector=injector,
                    attempt=attempt, **comm_kwargs)
    try:
        value = fn(comm, *args, **kwargs)
        result_conn.send(_RankResult(rank, value=value))
    except Exception as exc:  # noqa: BLE001 - relayed to the parent
        result_conn.send(_RankResult(rank, error=f"{type(exc).__name__}: {exc}",
                                     traceback=traceback.format_exc()))
    finally:
        result_conn.close()


def _reap(procs: list, result_parents: list[Any]) -> None:
    """Terminate stragglers, reap every child, close every parent conn."""
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(2.0)
            if p.is_alive():  # pragma: no cover - terminate() suffices
                p.kill()
                p.join(5.0)
        else:
            p.join()  # reap the zombie
        try:
            p.close()
        except ValueError:  # pragma: no cover - still alive after kill
            pass
    for conn in result_parents:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _run_attempt(fn: Callable[..., Any], nprocs: int, args: tuple,
                 kwargs: dict, timeout: float, comm_kwargs: dict,
                 faults: dict | None, attempt: int) -> list[RankOutcome]:
    ctx = get_context()
    # links[i][j]: connection rank i uses to talk to rank j.
    links: list[dict[int, Any]] = [dict() for _ in range(nprocs)]
    for i in range(nprocs):
        for j in range(i + 1, nprocs):
            a, b = Pipe(duplex=True)
            links[i][j] = a
            links[j][i] = b
    result_parents = []
    result_children = []
    for _ in range(nprocs):
        parent_conn, child_conn = Pipe(duplex=False)
        result_parents.append(parent_conn)
        result_children.append(child_conn)

    procs = []
    for rank in range(nprocs):
        p = ctx.Process(
            target=_spmd_child,
            args=(rank, nprocs, links, result_children, fn, args, kwargs,
                  comm_kwargs, (faults or {}).get(rank), attempt),
            daemon=True,
        )
        procs.append(p)
        p.start()

    if ctx.get_start_method() == "fork":
        # Drop the parent's copies of every child-side pipe end, so a rank
        # dying leaves nobody holding its connections open (EOF-based
        # failure detection).  Under spawn the fds travel lazily through
        # the resource sharer, so the parent must keep them; peers then
        # fall back to deadline-based detection.
        for linkmap in links:
            for conn in linkmap.values():
                conn.close()
        for conn in result_children:
            conn.close()

    outcomes = [RankOutcome(rank=r, timed_out=True,
                            error=f"no result within {timeout}s")
                for r in range(nprocs)]
    pending = {conn: r for r, conn in enumerate(result_parents)}
    deadline = time.monotonic() + timeout

    def deliver(conn: Any, r: int) -> None:
        try:
            res: _RankResult = conn.recv()
            outcomes[r] = RankOutcome(r, value=res.value, error=res.error,
                                      traceback=res.traceback)
        except (EOFError, OSError):
            code = procs[r].exitcode
            outcomes[r] = RankOutcome(
                r, error=f"rank process died without a result "
                         f"(exitcode {code})")

    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        sentinels = {procs[r].sentinel: r for r in pending.values()
                     if procs[r].is_alive()}
        ready = _conn_wait(list(pending) + list(sentinels),
                          timeout=remaining)
        if not ready:
            break
        for obj in ready:
            if obj in pending:
                deliver(obj, pending.pop(obj))
        for obj in ready:
            r = sentinels.get(obj)
            if r is None:
                continue
            conn = result_parents[r]
            if conn not in pending:
                continue
            # The process exited; give a just-flushed result one chance.
            procs[r].join()
            if conn.poll(0.1):
                deliver(conn, pending.pop(conn))
            else:
                code = procs[r].exitcode
                outcomes[r] = RankOutcome(
                    r, error=f"rank process died without a result "
                             f"(exitcode {code})")
                del pending[conn]

    _reap(procs, result_parents)
    return outcomes


def run_spmd(fn: Callable[..., Any], nprocs: int, *args: Any,
             timeout: float = 120.0,
             comm_timeout: float | None = None,
             faults: dict | None = None,
             max_restarts: int = 0,
             restart_backoff: float = 0.25,
             strict: bool = True,
             **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks; return all results.

    Spawns ``nprocs`` OS processes wired into a full pipe mesh, calls ``fn``
    on each with its :class:`PipeComm`, and returns the per-rank return
    values ordered by rank.  Ranks that miss the ``timeout`` deadline are
    terminated (killed if necessary) and reaped -- the harness never leaks
    live children or zombies.

    ``comm_timeout`` sets the per-message deadline of every rank's
    :class:`PipeComm` (default 30 s); ``faults`` maps rank numbers to
    :class:`~repro.parallel.faults.RankFaultInjector` instances for chaos
    testing.

    ``max_restarts`` enables respawn-and-retry for *idempotent* rank
    functions: when any rank fails, the whole mesh is torn down, the
    parent sleeps ``restart_backoff * 2**attempt`` seconds, and all ranks
    are relaunched (their comms carry the new ``attempt`` number) -- up to
    ``max_restarts`` times before the failure is reported.

    With ``strict=True`` (default) any surviving failure raises a
    ``RuntimeError`` naming the failing ranks and carrying their full
    tracebacks.  With ``strict=False`` the call never raises on rank
    failures and instead returns a list of :class:`RankOutcome`, so chaos
    tests can inspect survivors and casualties side by side.

    ``nprocs == 1`` short-circuits to an in-process call with a
    :class:`SerialComm`, which keeps tests fast and debuggable.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if nprocs == 1:
        if strict:
            return [fn(SerialComm(), *args, **kwargs)]
        try:
            return [RankOutcome(0, value=fn(SerialComm(), *args, **kwargs))]
        except Exception as exc:  # noqa: BLE001 - mirrored from child path
            return [RankOutcome(0, error=f"{type(exc).__name__}: {exc}",
                                traceback=traceback.format_exc())]

    comm_kwargs = {} if comm_timeout is None else {"timeout": comm_timeout}
    tel = get_telemetry()
    with tel.span("spmd.run", nprocs=nprocs) as sp:
        attempt = 0
        while True:
            outcomes = _run_attempt(fn, nprocs, args, kwargs, timeout,
                                    comm_kwargs, faults, attempt)
            failures = [o for o in outcomes if not o.ok]
            if not failures or attempt >= max_restarts:
                break
            tel.metrics.counter("spmd.respawns").inc()
            time.sleep(restart_backoff * (2 ** attempt))
            attempt += 1
        sp.set(attempts=attempt + 1, failed_ranks=len(failures))

    if not strict:
        return outcomes
    if failures:
        summary = "; ".join(f"rank {o.rank}: {o.error}" for o in failures)
        tracebacks = "".join(
            f"\n--- rank {o.rank} traceback ---\n{o.traceback}"
            for o in failures if o.traceback)
        raise RuntimeError(f"SPMD execution failed: {summary}{tracebacks}")
    return [o.value for o in outcomes]
