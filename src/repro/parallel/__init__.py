"""MPI-like parallel substrate.

The NUMARCK paper runs inside MPI simulations (FLASH) and uses the authors'
parallel k-means package.  This repo has no MPI runtime, so this package
provides a small SPMD harness with the same *shape* as ``mpi4py``:

* :class:`Comm` -- communicator protocol (``rank``/``size``, ``send``/
  ``recv``, ``bcast``, ``scatter``, ``gather``, ``allgather``, ``reduce``,
  ``allreduce``, ``barrier``).
* :class:`SerialComm` -- trivial single-process communicator, used by
  default everywhere so the library works without spawning anything.
* :class:`PipeComm` + :func:`run_spmd` -- real multi-process SPMD execution
  over OS pipes, used by the parallel k-means driver and its tests.
* :mod:`repro.parallel.partition` -- 1-D and 2-D block decompositions.

Every distributed algorithm in the repo is written against :class:`Comm`,
so the serial and multi-process paths execute identical code.
"""

from repro.parallel.comm import Comm, PipeComm, SerialComm, run_spmd
from repro.parallel.insitu import GlobalStats, parallel_encode
from repro.parallel.partition import block_partition, partition_bounds, partition_slices
from repro.parallel.reduce import tree_allreduce

__all__ = [
    "Comm",
    "SerialComm",
    "PipeComm",
    "run_spmd",
    "parallel_encode",
    "GlobalStats",
    "block_partition",
    "partition_bounds",
    "partition_slices",
    "tree_allreduce",
]
