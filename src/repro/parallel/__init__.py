"""MPI-like parallel substrate with rank-level fault tolerance.

The NUMARCK paper runs inside MPI simulations (FLASH) and uses the authors'
parallel k-means package.  This repo has no MPI runtime, so this package
provides a small SPMD harness with the same *shape* as ``mpi4py``:

* :class:`Comm` -- communicator protocol (``rank``/``size``, ``send``/
  ``recv``, ``bcast``, ``scatter``, ``gather``, ``allgather``, ``reduce``,
  ``allreduce``, ``barrier``), plus the failure-absorbing ``*_degraded``
  collectives and :meth:`Comm.phase` labelling.
* :class:`SerialComm` -- trivial single-process communicator, used by
  default everywhere so the library works without spawning anything.
* :class:`PipeComm` + :func:`run_spmd` -- real multi-process SPMD execution
  over OS pipes with CRC-framed, acknowledged, deadline-bounded messaging:
  a dead, hung, or flaky peer raises :class:`RankFailureError` on every
  survivor instead of deadlocking, and ``run_spmd`` can respawn-and-retry
  idempotent rank functions.
* :class:`RankFaultInjector` -- chaos hook injecting crash / hang / drop /
  bit-flip / transient faults into the comm path, the communication-side
  sibling of :class:`repro.restart.faults.DiskFaultInjector`.
* :mod:`repro.parallel.partition` -- 1-D and 2-D block decompositions.

Every distributed algorithm in the repo is written against :class:`Comm`,
so the serial and multi-process paths execute identical code.
"""

from repro.parallel.comm import Comm, PipeComm, RankOutcome, SerialComm, run_spmd
from repro.parallel.faults import CommEvent, RankFailureError, RankFaultInjector
from repro.parallel.insitu import GlobalStats, parallel_encode
from repro.parallel.partition import block_partition, partition_bounds, partition_slices
from repro.parallel.reduce import tree_allreduce

__all__ = [
    "Comm",
    "SerialComm",
    "PipeComm",
    "RankOutcome",
    "run_spmd",
    "RankFailureError",
    "RankFaultInjector",
    "CommEvent",
    "parallel_encode",
    "GlobalStats",
    "block_partition",
    "partition_bounds",
    "partition_slices",
    "tree_allreduce",
]
