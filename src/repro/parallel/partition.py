"""Block decompositions of index ranges and grids.

These helpers mirror the usual MPI block-distribution conventions: the
first ``n % p`` parts receive one extra element, so part sizes differ by at
most one and concatenating the parts in order recovers the original range.
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_bounds", "partition_slices", "block_partition", "grid_partition"]


def partition_bounds(n: int, nparts: int) -> np.ndarray:
    """Return ``nparts + 1`` boundaries of a balanced block partition of ``range(n)``.

    ``bounds[k]:bounds[k+1]`` is part ``k``; sizes differ by at most one and
    larger parts come first.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    base, extra = divmod(n, nparts)
    sizes = np.full(nparts, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(nparts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def partition_slices(n: int, nparts: int) -> list[slice]:
    """Balanced block partition of ``range(n)`` as slices."""
    bounds = partition_bounds(n, nparts)
    return [slice(int(bounds[k]), int(bounds[k + 1])) for k in range(nparts)]


def block_partition(array: np.ndarray, nparts: int) -> list[np.ndarray]:
    """Split the leading axis of ``array`` into ``nparts`` contiguous views."""
    return [array[s] for s in partition_slices(array.shape[0], nparts)]


def grid_partition(shape: tuple[int, int], nparts: int) -> list[tuple[slice, slice]]:
    """Partition a 2-D grid into ``nparts`` row-band blocks.

    Row bands keep each part contiguous in C order, which is the
    cache-friendly choice for the row-major arrays used throughout the repo.
    """
    ny, nx = shape
    return [(s, slice(0, nx)) for s in partition_slices(ny, nparts)]
