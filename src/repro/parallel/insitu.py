"""In-situ distributed encoding (the paper's deployment mode).

NUMARCK runs *inside* the simulation: every MPI rank owns a shard of the
mesh and compresses it in place, with one communication-light model fit
shared across ranks (paper: "minimal data movement (mostly in place)").

:func:`parallel_encode` implements that pattern over the
:class:`~repro.parallel.Comm` protocol:

1. each rank computes change ratios for its shard locally;
2. rank 0 gathers a *bounded* sample of compressible candidates (default
   32k values per rank -- constant communication volume regardless of
   shard size), fits the configured strategy, and broadcasts the bin
   table;
3. optionally (``refine=True``, clustering only) the broadcast centroids
   are refined with distributed Lloyd iterations
   (:func:`~repro.kmeans.parallel_kmeans1d`), whose allreduce traffic is
   O(k) per iteration;
4. every rank assigns and error-checks its own points exhaustively against
   the shared table and builds its local
   :class:`~repro.core.encoder.EncodedIteration`.

The per-point guarantee is exactly the serial one: sharing the table only
affects bin placement, never the exactness check.

**Degraded-mode recovery** (``on_rank_failure="degrade"``, the default):
a checkpoint must still be produced when a peer rank dies or hangs
mid-collective, so every communication step runs through the
failure-absorbing ``*_degraded`` collectives.  Rank 0 fits the model from
the samples of the *surviving* ranks and piggybacks the lost-rank set on
its broadcasts, so all survivors agree on the membership and finish with
identical statistics.  Crucially the per-point error bound is unaffected:
the shared table only steers bin placement, and every surviving rank
still error-checks its own points exhaustively.  The result's
:class:`GlobalStats` then reports ``degraded=True`` with the
``lost_ranks``, and global counts cover survivors only.  Loss of rank 0
itself (the recovery coordinator) is always a loud
:class:`~repro.parallel.faults.RankFailureError`, as is any failure under
``on_rank_failure="raise"``.

Failure detection is timeout-based and therefore *unreliable* in the
theoretical sense: under extreme load a live rank can be suspected
falsely.  Two consequences to be aware of.  A falsely-suspected rank
that later needs data from the survivors fails loudly (it is skipped,
times out, and raises).  And if the false suspicion strikes on the very
last message of the encode, the suspected rank may complete cleanly
while the root conservatively reports it lost -- views of ``degraded``/
``lost_ranks`` can then differ between ranks, but every completed
encode still honors the per-point bound.  Size the communicator
``timeout`` above the longest compute phase to make false positives
rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.parallel.comm import Comm, SerialComm
from repro.telemetry.tracer import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import NumarckConfig
    from repro.core.encoder import EncodedIteration

# repro.core imports repro.kmeans, whose distributed driver imports
# repro.parallel (this package); importing repro.core at module scope here
# would close that cycle.  The core/kmeans symbols are therefore imported
# lazily inside the functions.

__all__ = ["parallel_encode", "GlobalStats"]


@dataclass(frozen=True)
class GlobalStats:
    """Aggregate compression statistics across all *surviving* ranks."""

    n_points: int
    n_incompressible: int
    n_bins: int
    #: True when at least one rank was lost and the encode completed from
    #: the survivors; global counts then cover survivors only.
    degraded: bool = False
    #: ranks lost during this encode (empty on a clean run).
    lost_ranks: tuple[int, ...] = ()
    #: True when the shared bin table came from ``model_hint`` (reuse hit):
    #: the sample gather, root fit, table broadcast and Lloyd refinement
    #: were all skipped -- communication drops to one O(1) allreduce.
    model_reused: bool = False

    @property
    def incompressible_ratio(self) -> float:
        return self.n_incompressible / self.n_points if self.n_points else 0.0


def _local_candidates(prev: np.ndarray, curr: np.ndarray,
                      cfg: "NumarckConfig") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    from repro.core.change import change_ratios

    field = change_ratios(prev, curr)
    r = field.ratios.ravel()
    forced = field.forced_exact.ravel()
    if cfg.reserve_zero_bin:
        mask = (np.abs(r) >= cfg.error_bound) & ~forced
    else:
        mask = ~forced
    return r, forced, mask


def parallel_encode(
    comm: Comm | None,
    local_prev: np.ndarray,
    local_curr: np.ndarray,
    config: NumarckConfig | None = None,
    sample_per_rank: int = 32_768,
    refine: bool = True,
    fit_mode: str = "sample",
    on_rank_failure: str = "degrade",
    model_hint=None,
    hint_baseline: float = 0.0,
    hint_drift: float | None = None,
) -> tuple[EncodedIteration, GlobalStats]:
    """SPMD encode of one iteration; call on every rank with its shard.

    Returns this rank's encoded shard plus the *global* statistics
    (identical on every rank).  With ``SerialComm`` the result matches the
    serial encoder up to sampling of the model fit.

    ``fit_mode`` selects how the shared bin table is learned:

    * ``"sample"`` -- gather a bounded candidate sample to rank 0, fit the
      configured strategy there, broadcast the table (default; any
      strategy).
    * ``"sketch"`` -- every rank builds a
      :class:`~repro.analysis.sketch.RatioSketch` of its candidates; one
      O(bins) allreduce merges them and every rank fits the identical
      weighted-k-means model locally.  Communication is constant in both
      data size and rank count; only meaningful for ``"clustering"``.

    ``on_rank_failure`` selects the failure semantics:

    * ``"degrade"`` (default) -- survive lost peers: the model is fitted
      from the surviving ranks' data and the returned stats carry
      ``degraded=True`` plus the ``lost_ranks``.  The per-point error
      bound E still holds on every surviving rank.
    * ``"raise"`` -- any lost peer raises
      :class:`~repro.parallel.faults.RankFailureError`.

    ``model_hint`` (a :class:`~repro.core.strategies.base.BinModel` every
    rank already holds, e.g. from the previous timestep's encode) enables
    the adaptive reuse path: each rank checks the hinted table against its
    local candidates, one O(1) allreduce agrees on the *global* fail
    fraction, and if it has not drifted more than ``hint_drift`` above
    ``hint_baseline`` the whole fit pipeline -- sample gather, root fit,
    table broadcast, Lloyd refinement -- is skipped (``hint_drift=None``
    reuses unconditionally).  The decision is collective, so every rank
    takes the same branch.  On drift, the normal fit runs and warm-starts
    from the hinted centers.  The per-point bound E is unaffected either
    way.
    """
    from repro.core.config import NumarckConfig
    from repro.core.encoder import EncodedIteration, _fit_model
    from repro.core.strategies.base import BinModel
    from repro.kmeans import parallel_kmeans1d

    comm = comm if comm is not None else SerialComm()
    cfg = config if config is not None else NumarckConfig()
    prev = np.asarray(local_prev, dtype=np.float64)
    curr = np.asarray(local_curr, dtype=np.float64)
    if prev.shape != curr.shape:
        raise ValueError(f"shard shape mismatch: {prev.shape} vs {curr.shape}")

    if fit_mode not in ("sample", "sketch"):
        raise ValueError(f"unknown fit_mode {fit_mode!r}")
    if on_rank_failure not in ("degrade", "raise"):
        raise ValueError(f"unknown on_rank_failure {on_rank_failure!r}")
    degrade = on_rank_failure == "degrade"
    _gather = comm.gather_degraded if degrade else comm.gather
    _bcast = comm.bcast_degraded if degrade else comm.bcast
    _allreduce = comm.allreduce_degraded if degrade else comm.allreduce

    tel = get_telemetry()
    with tel.span("insitu.parallel_encode", rank=comm.rank, size=comm.size,
                  n_local=int(np.asarray(curr).size)) as tspan:
        ratios, forced, cand_mask = _local_candidates(prev, curr, cfg)
        cand = ratios[cand_mask]

        reused = False
        if model_hint is not None and model_hint.n_bins:
            # -- adaptive reuse: collective drift check, O(1) traffic -----
            local_fail = int(np.count_nonzero(
                np.abs(model_hint.approximate(cand) - cand) >= cfg.error_bound
            )) if cand.size else 0
            with comm.phase("insitu.hint_validate"):
                totals = _allreduce(np.array([cand.size, local_fail],
                                             dtype=np.int64))
            n_cand_global = int(totals[0])
            fail_frac = int(totals[1]) / n_cand_global if n_cand_global else 0.0
            drift = max(0.0, fail_frac - hint_baseline)
            tel.metrics.gauge("adaptive.drift").set(drift)
            if hint_drift is None or drift <= hint_drift:
                reused = True
                reps = model_hint.representatives
                tel.metrics.counter("adaptive.reuse_hits").inc()
            else:
                tel.metrics.counter("adaptive.refits").inc()

        if reused:
            pass  # every rank already holds the shared table
        elif fit_mode == "sketch":
            # -- mergeable-sketch fit: O(bins) allreduce, local deterministic fit
            from repro.analysis.sketch import RatioSketch

            sketch = RatioSketch(cfg.error_bound).add(cand)
            with comm.phase("insitu.sketch_allreduce"):
                sketch.counts = _allreduce(sketch.counts)
            if sketch.total:
                reps = sketch.fit_model(cfg.n_bins,
                                        max_iter=cfg.kmeans_max_iter).representatives
            else:
                reps = np.empty(0)
        else:
            # -- bounded-sample gather and root-side model fit ---------------
            rng = np.random.default_rng(cfg.seed + comm.rank)
            if cand.size > sample_per_rank:
                idx = rng.choice(cand.size, size=sample_per_rank - 2, replace=False)
                sample = np.concatenate([cand[idx], [cand.min(), cand.max()]])
            else:
                sample = cand
            with comm.phase("insitu.sample_gather"):
                gathered = _gather(sample, root=0)
            if comm.rank == 0:
                live = [g for g in (gathered or [])
                        if g is not None and g.size]
                all_samples = np.concatenate(live) if live else np.empty(0)
                if all_samples.size:
                    ws = (model_hint.representatives
                          if model_hint is not None and model_hint.n_bins
                          else None)
                    model = _fit_model(all_samples, cfg, warm_start=ws)
                    reps = model.representatives
                else:
                    reps = np.empty(0)
                payload = (reps, comm.lost_ranks)
            else:
                payload = None
            with comm.phase("insitu.fit_bcast"):
                payload = _bcast(payload, root=0)
            reps, lost_at_fit = payload
            # Survivors adopt the root's view of the membership so later
            # collectives skip the casualties without re-detecting them.
            comm.note_lost(lost_at_fit)

        # -- optional distributed Lloyd refinement (paper's parallel k-means)
        if refine and not reused and cfg.strategy == "clustering" and reps.size > 1:
            with comm.phase("insitu.refine"):
                refined = parallel_kmeans1d(comm, cand, reps,
                                            max_iter=cfg.kmeans_max_iter,
                                            on_rank_failure=on_rank_failure)
                candidate = np.unique(refined.centroids)
                # Safeguard as in the serial strategy: keep the refinement
                # only if it does not cover fewer local+global points than
                # the root fit.
                def global_fails(table: np.ndarray) -> int:
                    m = BinModel(table)
                    local = int(np.count_nonzero(
                        np.abs(m.approximate(cand) - cand) >= cfg.error_bound
                    )) if cand.size else 0
                    return _allreduce(local)

                if global_fails(candidate) <= global_fails(reps):
                    reps = candidate

        # -- exhaustive local assignment and exactness check ----------------
        n = ratios.size
        indices = np.zeros(n, dtype=np.uint32)
        incompressible = forced.copy()
        cand_idx = np.flatnonzero(cand_mask)
        if cand_idx.size:
            if reps.size:
                model = BinModel(reps)
                labels = model.assign(ratios[cand_idx])
                approx = reps[labels]
                ok = np.abs(approx - ratios[cand_idx]) < cfg.error_bound
                offset = 1 if cfg.reserve_zero_bin else 0
                indices[cand_idx[ok]] = labels[ok].astype(np.uint32) + offset
                incompressible[cand_idx[~ok]] = True
            else:
                incompressible[cand_idx] = True

        encoded = EncodedIteration(
            shape=curr.shape,
            nbits=cfg.nbits,
            representatives=np.asarray(reps, dtype=np.float64),
            indices=indices,
            incompressible=incompressible,
            exact_values=curr.ravel()[incompressible].copy(),
            error_bound=cfg.error_bound,
            strategy=cfg.strategy,
            zero_reserved=cfg.reserve_zero_bin,
            model_reused=reused,
        )
        with comm.phase("insitu.stats"):
            n_points_global = _allreduce(n)
            n_incompressible_global = _allreduce(int(incompressible.sum()))
        lost = comm.lost_ranks
        stats = GlobalStats(
            n_points=n_points_global,
            n_incompressible=n_incompressible_global,
            n_bins=int(np.asarray(reps).size),
            degraded=bool(lost),
            lost_ranks=tuple(lost),
            model_reused=reused,
        )
        tspan.set(degraded=stats.degraded, n_lost=len(lost),
                  n_bins=stats.n_bins, model_reused=reused)
        if stats.degraded:
            tel.metrics.counter("insitu.degraded_encodes").inc()
    return encoded, stats
