"""Reduction algorithms on top of the :class:`~repro.parallel.Comm` protocol.

The generic ``Comm.reduce`` gathers linearly at the root, which is O(p) in
both messages and root-side work.  :func:`tree_allreduce` implements the
classic recursive-halving/doubling pattern (O(log p) rounds) used by real
MPI libraries; it exists both as a faster option for larger rank counts and
as a documented, testable example of writing a collective against the
point-to-point layer.

Failure semantics: the tree exchanges peer-to-peer (not root-coordinated),
so there is no degraded variant -- a lost partner surfaces as a
:class:`~repro.parallel.faults.RankFailureError` from the underlying
bounded-wait ``send``/``recv`` on every rank that depended on it.  Callers
that need to survive rank loss should use
:meth:`~repro.parallel.Comm.allreduce_degraded` instead.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.parallel.comm import Comm

__all__ = ["tree_allreduce"]


def tree_allreduce(comm: Comm, value: Any,
                   op: Callable[[Any, Any], Any] = operator.add) -> Any:
    """Allreduce via binomial-tree reduce to rank 0 plus tree broadcast.

    ``op`` must be associative and commutative (combination order depends on
    the tree shape).  Works for any ``comm.size >= 1``.
    """
    rank, size = comm.rank, comm.size
    acc = value

    # Binomial-tree reduction toward rank 0.
    step = 1
    while step < size:
        if rank % (2 * step) == 0:
            partner = rank + step
            if partner < size:
                acc = op(acc, comm.recv(partner))
        elif rank % (2 * step) == step:
            comm.send(acc, rank - step)
            break
        step *= 2

    # Binomial-tree broadcast of the result from rank 0.
    # Find the highest power of two >= size to mirror the reduction shape.
    top = 1
    while top < size:
        top *= 2
    step = top
    while step >= 1:
        if rank % (2 * step) == 0:
            partner = rank + step
            if partner < size:
                comm.send(acc, partner)
        elif rank % (2 * step) == step:
            acc = comm.recv(rank - step)
        step //= 2
    return acc
