"""Rank-level fault injection for the distributed layer.

This is the communication-path sibling of
:class:`repro.restart.faults.DiskFaultInjector`: where that injector
damages checkpoint *writes* through ``CheckpointFile``'s write hook, a
:class:`RankFaultInjector` damages *messages and processes* through
:class:`~repro.parallel.comm.PipeComm`'s injectable comm hook.  Together
they cover the two halves of the paper's operational fault model: the
disk can tear or corrupt a record mid-write, and a rank can die, hang,
or suffer a flaky interconnect mid-collective.

Fault families (mirroring the disk schedule style -- 1-based operation
counts, each trigger fires at most once):

* ``crash`` -- the process dies instantly (``os._exit``), without
  flushing results or closing connections cleanly.  Peers detect the
  death through pipe EOF or the recv deadline.
* ``hang``  -- the rank sleeps ``hang_seconds`` inside the operation;
  peers' deadlines fire long before it wakes.
* ``drop``  -- one framed message silently never reaches the wire; the
  sender's bounded resend recovers it.
* ``flip``  -- one bit of the framed message is inverted in flight; the
  receiver's CRC check rejects it and a NAK-triggered resend recovers.
* ``error`` -- a transient ``OSError`` (EIO) is raised from the comm
  operation; the exponential-backoff retry layer absorbs it.

Each family can be scheduled either by operation count (``crash_at=(3,)``
fires on this rank's third comm operation) or by pipeline phase
(``crash_in_phase="insitu.sample_gather"`` fires on the first operation
inside that phase; phases are declared by the algorithms through
:meth:`~repro.parallel.comm.Comm.phase`).  ``on_attempts`` restricts
firing to specific ``run_spmd`` respawn attempts, which is how tests
exercise respawn-and-retry: the fault fires on attempt 0 and the retried
attempt runs clean.

:class:`RankFailureError` is what every *survivor* of a lost rank
raises: bounded-wait communication converts what used to be an infinite
``Connection.recv`` block into a loud, attributable failure.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass

# Canonical definition lives in the unified hierarchy (repro.errors); the
# historical import path is kept as an alias.
from repro.errors import RankFailureError

__all__ = ["RankFailureError", "CommEvent", "RankFaultInjector", "DROP"]

#: Sentinel returned by a comm hook to drop the outgoing message.
DROP = object()

_FAULT_KINDS = ("crash", "hang", "drop", "flip", "error")


@dataclass(frozen=True)
class CommEvent:
    """One communicator operation, as seen by the injectable comm hook.

    ``op`` is ``"send"`` or ``"recv"``; ``peer`` the remote rank;
    ``phase`` the declared pipeline phase; ``attempt`` the ``run_spmd``
    respawn attempt; ``data`` the framed bytes about to be transmitted
    (``None`` for receive-side events).  Send-side events fire once per
    transmission, so resends are observed (and counted) individually,
    exactly like retried writes in the disk injector.
    """

    op: str
    peer: int
    phase: str
    attempt: int
    data: bytes | None = None


class RankFaultInjector:
    """Comm hook that injects rank faults on schedule.

    Comm operations on the host rank are counted (1-based, including
    resends and retries); the ``*_at`` schedules name the counts at which
    a fault fires and the ``*_in_phase`` triggers name a pipeline phase
    whose first operation fires it.  Every trigger fires at most once.

    Pass one injector per faulty rank through ``run_spmd(faults={rank:
    injector})``, or directly as the ``fault_injector`` of a
    :class:`~repro.parallel.comm.PipeComm`.  Instances are picklable
    plain data, so they survive the trip into spawned rank processes.
    """

    def __init__(self, *,
                 crash_at: tuple[int, ...] = (),
                 hang_at: tuple[int, ...] = (),
                 drop_at: tuple[int, ...] = (),
                 flip_at: tuple[int, ...] = (),
                 error_at: tuple[int, ...] = (),
                 crash_in_phase: str | None = None,
                 hang_in_phase: str | None = None,
                 drop_in_phase: str | None = None,
                 flip_in_phase: str | None = None,
                 error_in_phase: str | None = None,
                 hang_seconds: float = 3600.0,
                 flip_bit: int = 0,
                 on_attempts: tuple[int, ...] | None = None,
                 exit_code: int = 41) -> None:
        for name, at in (("crash_at", crash_at), ("hang_at", hang_at),
                         ("drop_at", drop_at), ("flip_at", flip_at),
                         ("error_at", error_at)):
            if any(n < 1 for n in at):
                raise ValueError(f"{name}: operation counts are 1-based")
        if hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if not 0 <= flip_bit <= 7:
            raise ValueError("flip_bit must be a bit index (0-7)")
        self.crash_at = frozenset(crash_at)
        self.hang_at = frozenset(hang_at)
        self.drop_at = frozenset(drop_at)
        self.flip_at = frozenset(flip_at)
        self.error_at = frozenset(error_at)
        self.crash_in_phase = crash_in_phase
        self.hang_in_phase = hang_in_phase
        self.drop_in_phase = drop_in_phase
        self.flip_in_phase = flip_in_phase
        self.error_in_phase = error_in_phase
        self.hang_seconds = float(hang_seconds)
        self.flip_bit = int(flip_bit)
        self.on_attempts = None if on_attempts is None else frozenset(on_attempts)
        self.exit_code = int(exit_code)
        self.ops_seen = 0
        self._fired: set[tuple[str, object]] = set()

    def _fires(self, kind: str, n: int, event: CommEvent) -> bool:
        key: tuple[str, object] | None = None
        if n in getattr(self, f"{kind}_at"):
            key = (kind, n)
        else:
            phase = getattr(self, f"{kind}_in_phase")
            if phase is not None and event.phase == phase:
                key = (kind, phase)
        if key is not None and key not in self._fired:
            self._fired.add(key)
            return True
        return False

    def apply(self, event: CommEvent) -> bytes | None | object:
        """The injectable comm hook: called once per comm operation.

        Returns ``None`` (proceed unchanged), replacement frame bytes
        (send events only), or :data:`DROP` (send events only); may also
        sleep, raise a transient ``OSError``, or kill the process.
        """
        self.ops_seen += 1
        n = self.ops_seen
        if self.on_attempts is not None and event.attempt not in self.on_attempts:
            return None
        if self._fires("crash", n, event):
            # A real crash: no cleanup, no result, connections die with us.
            os._exit(self.exit_code)
        if self._fires("hang", n, event):
            time.sleep(self.hang_seconds)
            return None
        if self._fires("error", n, event):
            raise OSError(errno.EIO,
                          f"injected transient comm error ({event.op} op {n})")
        if event.data is not None:
            if self._fires("drop", n, event):
                return DROP
            if self._fires("flip", n, event):
                corrupted = bytearray(event.data)
                corrupted[len(corrupted) // 2] ^= 1 << self.flip_bit
                return bytes(corrupted)
        return None
