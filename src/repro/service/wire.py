"""Wire framing for array payloads crossing the service boundary.

HTTP bodies carry float64 arrays in a tiny self-describing frame --

    ``b"NARR"`` | ``<Q n>`` little-endian count | ``n * 8`` bytes of ``<f8``

-- repeated once per array, so a single body can hold a sequence of
states (a decompress result is the whole decoded chain).  The frame is
deliberately dumber than the checkpoint container: no CRC, no tags --
transport integrity is TCP's job, and the *compressed* payloads that
matter travel as full container bytes (:func:`repro.io.chain_to_bytes`)
which carry their own per-record CRC32.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator

import numpy as np

from repro.errors import FormatError

__all__ = ["pack_arrays", "unpack_arrays", "iter_frames", "read_chunked",
           "MAGIC"]

MAGIC = b"NARR"
_HEADER = struct.Struct("<4sQ")


def pack_arrays(arrays) -> bytes:
    """Frame one or more 1-D float64 arrays into a single wire payload."""
    parts: list[bytes] = []
    for arr in arrays:
        data = np.ascontiguousarray(arr, dtype="<f8")
        if data.ndim != 1:
            raise FormatError(
                f"wire arrays must be 1-D, got shape {data.shape}"
            )
        parts.append(_HEADER.pack(MAGIC, data.size))
        parts.append(data.tobytes())
    return b"".join(parts)


def unpack_arrays(payload: bytes) -> list[np.ndarray]:
    """Parse a wire payload back into its framed arrays (strict)."""
    out: list[np.ndarray] = []
    off = 0
    total = len(payload)
    while off < total:
        if total - off < _HEADER.size:
            raise FormatError("truncated wire frame header")
        magic, n = _HEADER.unpack_from(payload, off)
        if magic != MAGIC:
            raise FormatError(f"bad wire magic {magic!r}")
        off += _HEADER.size
        nbytes = 8 * n
        if total - off < nbytes:
            raise FormatError(
                f"truncated wire frame: declared {n} values, "
                f"{(total - off) // 8} present"
            )
        out.append(np.frombuffer(payload, dtype="<f8", count=n,
                                 offset=off).copy())
        off += nbytes
    if not out:
        raise FormatError("empty wire payload")
    return out


def iter_frames(data: bytes, chunk_size: int = 1 << 16) -> Iterator[bytes]:
    """Split a payload into transport chunks for chunked uploads."""
    for off in range(0, len(data), chunk_size):
        yield data[off : off + chunk_size]


def read_chunked(rfile: BinaryIO) -> bytes:
    """Decode a ``Transfer-Encoding: chunked`` request body.

    ``http.server`` leaves chunked decoding to the handler; the framing is
    simple (hex size line, payload, CRLF, terminated by a zero-size chunk)
    and malformed input raises :class:`~repro.errors.FormatError` so the
    handler can answer 422 instead of hanging.
    """
    parts: list[bytes] = []
    while True:
        size_line = rfile.readline(1 << 10)
        if not size_line:
            raise FormatError("truncated chunked body: missing size line")
        try:
            size = int(size_line.split(b";", 1)[0].strip(), 16)
        except ValueError:
            raise FormatError(
                f"bad chunk size line {size_line!r}"
            ) from None
        if size == 0:
            # Consume the (possibly empty) trailer up to the blank line.
            while True:
                trailer = rfile.readline(1 << 10)
                if trailer in (b"\r\n", b"\n", b""):
                    break
            return b"".join(parts)
        chunk = rfile.read(size)
        if len(chunk) != size:
            raise FormatError("truncated chunk payload")
        parts.append(chunk)
        rfile.read(2)  # trailing CRLF
