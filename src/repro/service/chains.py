"""Per-tenant checkpoint chains behind the service.

A *chain* is the service-side name for one tenant's checkpoint sequence:
the first compress job on a chain stores its array as the full checkpoint,
every later job appends an encoded delta.  Each chain wraps one live
:class:`~repro.core.checkpoint.CheckpointChain`, so with
``adaptive=True`` in its config the fitted bin model is carried across
*jobs* exactly as it is carried across iterations in a single process --
the model hint rides on the chain, not on the request.

Chains are optionally durable.  With a ``store_dir`` every accepted
iteration is persisted through the crash-consistent container:
``CheckpointFile.create`` for the full checkpoint, then per-iteration
``CheckpointFile.append`` (per-record fsync, O(1) in chain length -- the
:meth:`~repro.restart.manager.RestartManager.persist_incremental`
pattern).  On startup existing files are re-opened with
``recover="tail"`` so a torn tail from a crashed server costs the torn
record, never the chain.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.errors import ChainNotFoundError, ConfigError, StateError
from repro.io.container import CheckpointFile, chain_to_bytes, load_chain
from repro.telemetry.tracer import get_telemetry

__all__ = ["Chain", "ChainRegistry"]

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _validate_id(chain_id: str) -> str:
    """Chain ids become file names; reject anything path-unsafe."""
    if not isinstance(chain_id, str) or not _ID_RE.match(chain_id):
        raise ConfigError(
            f"invalid chain id {chain_id!r}: need 1-64 chars of "
            f"[A-Za-z0-9._-] starting with an alphanumeric"
        )
    return chain_id


class Chain:
    """One tenant chain: a live ``CheckpointChain`` plus its lock, path
    and counters.  All mutation happens under :attr:`lock`, which the
    registry hands to the job closure -- two jobs on the same chain
    serialise, jobs on different chains run concurrently."""

    def __init__(self, chain_id: str, config: NumarckConfig,
                 path: Path | None) -> None:
        self.id = chain_id
        self.config = config
        self.path = path
        self.lock = threading.RLock()
        self.chain: CheckpointChain | None = None
        self.jobs_accepted = 0
        self.bytes_in = 0
        self.bytes_out = 0

    # -- mutation (caller holds no lock; we take our own) -------------------

    def append_state(self, state: np.ndarray) -> dict[str, Any]:
        """Absorb one iteration: full checkpoint if the chain is empty,
        encoded delta otherwise.  Returns a result summary dict."""
        arr = np.asarray(state, dtype=np.float64)
        with self.lock, get_telemetry().span(
                "service.chain.append", chain=self.id,
                bytes_in=arr.nbytes) as sp:
            if self.chain is None:
                self.chain = CheckpointChain(arr, self.config)
                kind = "full"
                reused = False
                if self.path is not None:
                    with CheckpointFile.create(self.path, sync=True) as f:
                        f.write_full(self.chain.full_checkpoint)
            else:
                self.chain.append(arr)
                encoded = self.chain.deltas[-1]
                kind = "delta"
                reused = bool(getattr(encoded, "model_reused", False))
                if self.path is not None:
                    with CheckpointFile.append(self.path) as f:
                        f.write_delta(encoded)
            self.jobs_accepted += 1
            self.bytes_in += arr.nbytes
            sp.set(record=kind, model_reused=reused,
                   iterations=len(self.chain))
            return {"chain": self.id, "record": kind,
                    "iteration": len(self.chain) - 1,
                    "model_reused": reused}

    def container_bytes(self) -> bytes:
        """The chain as container bytes -- byte-identical to
        ``save_chain`` of the same chain."""
        with self.lock:
            if self.chain is None:
                raise StateError(f"chain {self.id!r} holds no checkpoints yet")
            return chain_to_bytes(self.chain)

    def stats(self) -> dict[str, Any]:
        with self.lock:
            n = len(self.chain) if self.chain is not None else 0
            reuse = self.chain.reuse_stats if self.chain is not None else None
            out: dict[str, Any] = {
                "id": self.id,
                "iterations": n,
                "n_points": (int(self.chain.full_checkpoint.size)
                             if self.chain is not None else 0),
                "jobs_accepted": self.jobs_accepted,
                "bytes_in": self.bytes_in,
                "config": self.config.to_dict(),
                "durable": self.path is not None,
            }
            if reuse is not None:
                out["model_reuse"] = {"encodes": reuse.encodes,
                                      "reuse_hits": reuse.reuse_hits,
                                      "refits": reuse.refits,
                                      "hit_rate": reuse.hit_rate}
            return out


class ChainRegistry:
    """Name -> :class:`Chain` map with optional on-disk recovery."""

    def __init__(self, config: NumarckConfig | None = None,
                 store_dir: str | Path | None = None) -> None:
        self.default_config = config if config is not None else NumarckConfig()
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self._chains: dict[str, Chain] = {}
        self._lock = threading.Lock()
        if self.store_dir is not None:
            self.store_dir.mkdir(parents=True, exist_ok=True)
            self._recover()

    def _path_for(self, chain_id: str) -> Path | None:
        if self.store_dir is None:
            return None
        return self.store_dir / f"{chain_id}.nmk"

    def _recover(self) -> None:
        """Re-open persisted chains, salvaging torn tails."""
        assert self.store_dir is not None
        for path in sorted(self.store_dir.glob("*.nmk")):
            chain_id = path.stem
            if not _ID_RE.match(chain_id):
                continue
            loaded, report = load_chain(path, self.default_config,
                                        recover="tail")
            with get_telemetry().span("service.chain.recover",
                                      chain=chain_id) as sp:
                sp.set(iterations=len(loaded),
                       records_dropped=report.records_dropped)
            chain = Chain(chain_id, self.default_config, path)
            chain.chain = loaded
            self._chains[chain_id] = chain

    # -- lookup / creation --------------------------------------------------

    def create(self, chain_id: str,
               config: NumarckConfig | None = None) -> Chain:
        """Create an empty chain; duplicate ids raise ``StateError``."""
        _validate_id(chain_id)
        cfg = config if config is not None else self.default_config
        with self._lock:
            if chain_id in self._chains:
                raise StateError(f"chain {chain_id!r} already exists")
            chain = Chain(chain_id, cfg, self._path_for(chain_id))
            self._chains[chain_id] = chain
            return chain

    def get(self, chain_id: str) -> Chain:
        with self._lock:
            chain = self._chains.get(chain_id)
        if chain is None:
            raise ChainNotFoundError(f"no such chain {chain_id!r}")
        return chain

    def get_or_create(self, chain_id: str,
                      config: NumarckConfig | None = None) -> Chain:
        """Fetch a chain, creating it on first use (the compress path)."""
        _validate_id(chain_id)
        with self._lock:
            chain = self._chains.get(chain_id)
            if chain is None:
                cfg = config if config is not None else self.default_config
                chain = Chain(chain_id, cfg, self._path_for(chain_id))
                self._chains[chain_id] = chain
            elif config is not None and config != chain.config:
                raise StateError(
                    f"chain {chain_id!r} already exists with a different "
                    f"config; omit config or use a new chain id"
                )
            return chain

    def list(self) -> list[dict[str, Any]]:
        with self._lock:
            chains = list(self._chains.values())
        return [c.stats() for c in chains]

    def __len__(self) -> int:
        with self._lock:
            return len(self._chains)
