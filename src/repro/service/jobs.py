"""Bounded job queue and worker pool for the compression service.

Jobs move through ``queued -> running -> done | failed | cancelled``.
The queue is *bounded*: once ``capacity`` jobs are waiting, further
submits raise :class:`~repro.errors.QueueFullError` (the HTTP layer turns
that into ``429`` + ``Retry-After``) instead of buffering unboundedly --
backpressure is the contract, and a job that *was* accepted is never
dropped: workers drain the queue until :meth:`JobQueue.close`.

Progress comes from telemetry, not ad-hoc callbacks.  While the queue is
running it installs an ambient :class:`~repro.telemetry.tracer.Telemetry`
whose sink is a :class:`_TelemetryRouter`: spans are written on the thread
that emitted them, so the router keys the worker-thread id to the job it
is executing and folds each finished span into that job's ``progress``
dict (span count, bytes in/out, last stage name).  Spans from threads that
are not running a job -- and every span, as a tee -- fall through to
whatever sink was ambient before the queue started, so ``NUMARCK_TRACE``
keeps working while a server is up.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Callable

from repro.errors import (
    JobCancelledError,
    JobNotFoundError,
    QueueFullError,
    ServiceUnavailableError,
    StateError,
)
from repro.telemetry.tracer import Telemetry, get_telemetry, set_telemetry

__all__ = ["Job", "JobQueue"]

#: terminal job states.
FINISHED = frozenset({"done", "failed", "cancelled"})


class Job:
    """One unit of service work and its observable lifecycle."""

    def __init__(self, job_id: str, kind: str,
                 fn: Callable[[], bytes], *,
                 chain_id: str | None = None) -> None:
        self.id = job_id
        self.kind = kind
        self.chain_id = chain_id
        self.fn = fn
        self.state = "queued"
        self.progress: dict[str, Any] = {"spans": 0, "bytes_in": 0,
                                         "bytes_out": 0, "last_stage": None}
        self.result: bytes | None = None
        self.error: BaseException | None = None
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.finished = threading.Event()

    def to_dict(self) -> dict[str, Any]:
        """Status JSON for the HTTP surface."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "progress": dict(self.progress),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.chain_id is not None:
            out["chain"] = self.chain_id
        if self.result is not None:
            out["result_bytes"] = len(self.result)
        if self.error is not None:
            out["error"] = {"type": type(self.error).__name__,
                            "message": str(self.error)}
        return out


class _TelemetryRouter:
    """Span sink that routes each record to the job running on the
    emitting thread, then tees it to the previously ambient sink."""

    def __init__(self, downstream=None) -> None:
        self._jobs: dict[int, Job] = {}
        self._downstream = downstream
        self._lock = threading.Lock()

    def register(self, job: Job) -> None:
        with self._lock:
            self._jobs[threading.get_ident()] = job

    def unregister(self) -> None:
        with self._lock:
            self._jobs.pop(threading.get_ident(), None)

    def write(self, record: dict) -> None:
        with self._lock:
            job = self._jobs.get(threading.get_ident())
        if job is not None and record.get("type") == "span":
            prog = job.progress
            prog["spans"] += 1
            attrs = record.get("attrs", {})
            for key in ("bytes_in", "bytes_out"):
                amount = attrs.get(key)
                if isinstance(amount, (int, float)):
                    prog[key] += int(amount)
            prog["last_stage"] = record.get("name")
            prog["updated_at"] = time.time()
        if self._downstream is not None:
            self._downstream.write(record)

    def flush(self) -> None:
        if self._downstream is not None:
            self._downstream.flush()

    def close(self) -> None:
        # The downstream sink belongs to the pre-existing telemetry (e.g.
        # the NUMARCK_TRACE exit-flushed file); flush but never close it.
        self.flush()


class JobQueue:
    """Bounded FIFO of :class:`Job` executed by a small worker pool.

    Parameters
    ----------
    capacity:
        Maximum number of *queued* (not yet running) jobs; submits beyond
        it raise :class:`~repro.errors.QueueFullError`.
    workers:
        Worker-thread count.  A job that raises is marked ``failed`` and
        its worker keeps serving -- a crashing job must not shrink the
        pool.
    retry_after:
        Advisory client back-off (seconds) carried on the 429.
    """

    def __init__(self, capacity: int = 32, workers: int = 2, *,
                 retry_after: float = 0.05) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.capacity = capacity
        self.retry_after = retry_after
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._queued = 0
        self._running = 0
        self._done = 0
        self._failed = 0
        self._cancelled = 0
        self._unpaused = threading.Event()
        self._unpaused.set()
        self._open = False
        self._router: _TelemetryRouter | None = None
        self._tel: Telemetry | None = None
        self._prev_tel = None
        self._threads = [
            threading.Thread(target=self._worker, name=f"numarck-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobQueue":
        """Install the span router as ambient telemetry and start workers."""
        prev = get_telemetry()
        self._router = _TelemetryRouter(getattr(prev, "sink", None))
        self._tel = Telemetry(sink=self._router, keep_spans=False)
        self._prev_tel = set_telemetry(self._tel)
        self._open = True
        for t in self._threads:
            t.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Drain accepted jobs, stop workers, restore ambient telemetry."""
        if not self._open:
            return
        self._open = False
        self._unpaused.set()
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=timeout)
        set_telemetry(self._prev_tel)
        if self._tel is not None:
            self._tel.close()
            self._tel = None
        self._router = None

    def pause(self) -> None:
        """Stop workers from picking up further jobs (tests use this to
        fill the queue deterministically); running jobs finish."""
        self._unpaused.clear()

    def resume(self) -> None:
        self._unpaused.set()

    # -- submission and lookup ---------------------------------------------

    def submit(self, kind: str, fn: Callable[[], bytes], *,
               chain_id: str | None = None) -> Job:
        """Queue a job or raise :class:`~repro.errors.QueueFullError`."""
        with self._lock:
            if not self._open:
                raise ServiceUnavailableError("job queue is shut down")
            if self._queued >= self.capacity:
                raise QueueFullError(
                    f"job queue full ({self.capacity} queued)",
                    retry_after=self.retry_after,
                )
            job = Job(f"job-{next(self._ids)}", kind, fn, chain_id=chain_id)
            self._jobs[job.id] = job
            self._queued += 1
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job; the worker discards it on dequeue.

        Running jobs are not interruptible (the encoder has no safe
        preemption point) and finished jobs are immutable -- both raise
        :class:`~repro.errors.StateError` (HTTP 409).
        """
        job = self.get(job_id)
        with self._lock:
            if job.state != "queued":
                raise StateError(
                    f"cannot cancel job {job_id!r} in state {job.state!r}"
                )
            job.state = "cancelled"
            job.error = JobCancelledError(f"job {job_id!r} was cancelled")
            job.finished_at = time.time()
            self._queued -= 1
            self._cancelled += 1
        job.finished.set()
        return job

    def result(self, job_id: str) -> bytes:
        """Result bytes of a finished job; re-raises its error otherwise."""
        job = self.get(job_id)
        if job.state in ("queued", "running"):
            raise StateError(
                f"job {job_id!r} is {job.state}; result not ready"
            )
        if job.error is not None:
            raise job.error
        assert job.result is not None
        return job.result

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.get(job_id)
        if not job.finished.wait(timeout):
            raise StateError(f"timed out waiting for job {job_id!r}")
        return job

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "workers": len(self._threads),
                "queued": self._queued,
                "running": self._running,
                "done": self._done,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "accepting": self._open and self._queued < self.capacity,
            }

    # -- worker loop -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            # The pause gate sits *after* dequeue: idle workers block in
            # get(), so gating only before it would let them start jobs
            # submitted while paused.  A held job still counts as queued
            # (and stays cancellable) until the gate opens.
            self._unpaused.wait()
            with self._lock:
                if job.state != "queued":  # cancelled while waiting
                    continue
                job.state = "running"
                job.started_at = time.time()
                self._queued -= 1
                self._running += 1
            router = self._router
            if router is not None:
                router.register(job)
            try:
                job.result = job.fn()
            except BaseException as exc:  # noqa: BLE001 - job isolation
                job.error = exc
                with self._lock:
                    job.state = "failed"
                    self._running -= 1
                    self._failed += 1
            else:
                with self._lock:
                    job.state = "done"
                    self._running -= 1
                    self._done += 1
            finally:
                if router is not None:
                    router.unregister()
                job.finished_at = time.time()
                job.finished.set()
