"""Compression-as-a-service: an async job API over the Codec.

The service turns the library's compression pipeline into a long-running
process other programs talk to::

    from repro.service import ServiceConfig, ServiceServer, ServiceClient

    with ServiceServer(ServiceConfig(workers=4)) as srv:
        client = ServiceClient(port=srv.port)
        client.compress("run-42", state_0)          # full checkpoint
        client.compress("run-42", state_1)          # delta (model reuse)
        blob = client.download_chain("run-42")      # container bytes
        states = client.decompress(blob)            # decoded states

Layering (each importable on its own):

* :mod:`repro.service.jobs` -- bounded queue + worker pool; telemetry-fed
  per-job progress; backpressure via :class:`~repro.errors.QueueFullError`.
* :mod:`repro.service.chains` -- per-tenant chains with adaptive
  bin-model reuse across jobs and crash-consistent persistence.
* :mod:`repro.service.app` -- transport-agnostic core
  (:class:`CompressionService`), usable in-process without HTTP.
* :mod:`repro.service.http` / :mod:`repro.service.client` -- the
  stdlib-only HTTP surface and its blocking Python client.
* :mod:`repro.service.wire` -- array framing for request/response bodies.

Everything is stdlib + numpy; errors cross the HTTP boundary as
:mod:`repro.errors` classes mapped through
:func:`repro.errors.http_status` and rehydrated client-side.
"""

from repro.service.app import CompressionService, ServiceConfig
from repro.service.chains import Chain, ChainRegistry
from repro.service.client import ServiceClient
from repro.service.http import ServiceServer, serve
from repro.service.jobs import Job, JobQueue
from repro.service.wire import pack_arrays, unpack_arrays

__all__ = [
    "CompressionService",
    "ServiceConfig",
    "ServiceServer",
    "ServiceClient",
    "serve",
    "Job",
    "JobQueue",
    "Chain",
    "ChainRegistry",
    "pack_arrays",
    "unpack_arrays",
]
