"""Python client for the compression service.

:class:`ServiceClient` speaks the HTTP surface of
:mod:`repro.service.http` with nothing but :mod:`http.client`.  Binary
uploads go out with ``Transfer-Encoding: chunked`` (the server decodes
them manually), and server-side failures are raised as the *same*
exception classes the server threw: the error body carries the type name,
which is resolved against :mod:`repro.errors` -- so ``except
QueueFullError`` works identically against a local ``CompressionService``
and a remote server.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

import numpy as np

import repro.errors as _errors
from repro.errors import NumarckError, QueueFullError, StateError
from repro.service.wire import iter_frames, pack_arrays, unpack_arrays

__all__ = ["ServiceClient"]

#: error-type name -> class, for rehydrating server-side exceptions.
_BY_NAME = {
    name: obj for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, NumarckError)
}


class ServiceClient:
    """Thin blocking client; one short-lived connection per call (safe to
    share across threads)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, body=None,
                 headers: dict[str, str] | None = None,
                 chunked: bool = False) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {},
                         encode_chunked=chunked)
            resp = conn.getresponse()
            payload = resp.read()
            return resp.status, dict(resp.getheaders()), payload
        finally:
            conn.close()

    def _json(self, method: str, path: str, body=None,
              headers: dict[str, str] | None = None,
              chunked: bool = False) -> Any:
        status, hdrs, payload = self._request(method, path, body, headers,
                                              chunked)
        if status >= 400:
            self._raise(status, hdrs, payload)
        return json.loads(payload) if payload else None

    def _bytes(self, path: str) -> bytes:
        status, hdrs, payload = self._request("GET", path)
        if status >= 400:
            self._raise(status, hdrs, payload)
        return payload

    @staticmethod
    def _raise(status: int, headers: dict[str, str],
               payload: bytes) -> None:
        try:
            err = json.loads(payload)["error"]
            name, message = err["type"], err["message"]
        except (ValueError, KeyError, TypeError):
            name, message = "NumarckError", f"HTTP {status}: {payload[:200]!r}"
        cls = _BY_NAME.get(name, NumarckError)
        if cls is QueueFullError:
            retry_after = float(headers.get("Retry-After", 1.0))
            raise QueueFullError(message, retry_after=retry_after)
        try:
            exc = cls(message)
        except TypeError:
            # Classes with structured constructors (e.g. RankFailureError)
            # cannot be rebuilt from a message alone; degrade to the base.
            exc = NumarckError(message)
        raise exc

    # -- chains --------------------------------------------------------------

    def create_chain(self, chain_id: str,
                     config: dict[str, Any] | None = None) -> dict[str, Any]:
        body = json.dumps({"config": config} if config else {}).encode()
        return self._json("POST", f"/v1/chains/{chain_id}", body,
                          {"Content-Type": "application/json"})

    def chains(self) -> list[dict[str, Any]]:
        return self._json("GET", "/v1/chains")["chains"]

    def chain_stats(self, chain_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/chains/{chain_id}")

    def download_chain(self, chain_id: str) -> bytes:
        """The chain's container bytes (feed to ``load_chain`` /
        ``chain_from_bytes`` or back into :meth:`decompress`)."""
        return self._bytes(f"/v1/chains/{chain_id}/container")

    # -- job submission ------------------------------------------------------

    def submit_compress(self, chain_id: str, state: np.ndarray,
                        config: dict[str, Any] | None = None
                        ) -> dict[str, Any]:
        """Submit one state array to a chain (chunked upload); returns the
        job-status dict (``state`` starts at ``"queued"``)."""
        headers = {"Content-Type": "application/octet-stream"}
        if config is not None:
            headers["X-Numarck-Config"] = json.dumps(config)
        payload = pack_arrays([np.asarray(state, dtype=np.float64).ravel()])
        return self._json("POST", f"/v1/chains/{chain_id}/compress",
                          iter_frames(payload), headers, chunked=True)

    def submit_decompress(self, container: bytes,
                          config: dict[str, Any] | None = None
                          ) -> dict[str, Any]:
        """Submit container bytes for decoding (chunked upload)."""
        headers = {"Content-Type": "application/octet-stream"}
        if config is not None:
            headers["X-Numarck-Config"] = json.dumps(config)
        return self._json("POST", "/v1/decompress",
                          iter_frames(container), headers, chunked=True)

    # -- job lifecycle -------------------------------------------------------

    def status(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> bytes:
        return self._bytes(f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.01) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        Raises :class:`~repro.errors.StateError` on timeout.  Does not
        raise for failed jobs -- inspect ``status["state"]`` or fetch the
        result (which re-raises the job's error).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise StateError(f"timed out waiting for job {job_id!r}")
            time.sleep(poll)

    # -- high-level round trips ----------------------------------------------

    def compress(self, chain_id: str, state: np.ndarray,
                 config: dict[str, Any] | None = None, *,
                 timeout: float = 60.0,
                 retries: int = 0,
                 ) -> dict[str, Any]:
        """Submit one state and wait for completion.

        ``retries`` > 0 backs off on 429 using the server's
        ``Retry-After`` hint, then re-raises the final
        :class:`~repro.errors.QueueFullError`.
        """
        attempt = 0
        while True:
            try:
                job = self.submit_compress(chain_id, state, config)
                break
            except QueueFullError as exc:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(exc.retry_after)
        status = self.wait(job["id"], timeout)
        if status["state"] != "done":
            self.result(job["id"])  # re-raises the mapped job error
        return status

    def decompress(self, container: bytes,
                   config: dict[str, Any] | None = None, *,
                   timeout: float = 60.0) -> list[np.ndarray]:
        """Decode container bytes into every stored state, full first."""
        job = self.submit_decompress(container, config)
        status = self.wait(job["id"], timeout)
        if status["state"] != "done":
            self.result(job["id"])  # re-raises the mapped job error
        return unpack_arrays(self.result(job["id"]))

    # -- health --------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")
