"""HTTP surface of the compression service (stdlib-only).

Routes (all JSON unless noted)::

    GET  /healthz                        liveness + degradation signal
    GET  /v1/jobs                        job list
    GET  /v1/jobs/<id>                   status + telemetry-fed progress
    GET  /v1/jobs/<id>/result            result bytes (chunked download)
    POST /v1/jobs/<id>/cancel            cancel a queued job
    GET  /v1/chains                      chain list
    POST /v1/chains/<id>                 create chain (body: config JSON)
    GET  /v1/chains/<id>                 chain stats
    GET  /v1/chains/<id>/container       container bytes (chunked download)
    POST /v1/chains/<id>/compress        submit one state (wire array body)
    POST /v1/decompress                  submit container bytes

Uploads may use ``Transfer-Encoding: chunked`` (decoded manually -- see
:func:`repro.service.wire.read_chunked`) or a plain ``Content-Length``.
Errors are the :mod:`repro.errors` hierarchy mapped through
:func:`repro.errors.http_status`; a 429 carries ``Retry-After``.  The
server is a ``ThreadingHTTPServer``: each request runs on its own thread
while the actual compression work runs on the job queue's worker pool, so
slow encodes never block status polls.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import (
    ConfigError,
    NumarckError,
    QueueFullError,
    http_status,
)
from repro.service.app import CompressionService, ServiceConfig
from repro.service.wire import read_chunked

__all__ = ["ServiceServer", "serve"]

_MAX_BODY = 1 << 31  # sanity bound on declared Content-Length

_DOWNLOAD_CHUNK = 1 << 16


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the shared :class:`CompressionService`."""

    protocol_version = "HTTP/1.1"
    server_version = "numarck-service"

    # -- plumbing ------------------------------------------------------------

    @property
    def service(self) -> CompressionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        # Access logging goes through telemetry (span per request), not
        # stderr; keep test output clean.
        pass

    def _read_body(self) -> bytes:
        if self.headers.get("Transfer-Encoding", "").lower() == "chunked":
            return read_chunked(self.rfile)
        length = int(self.headers.get("Content-Length", 0) or 0)
        if not 0 <= length < _MAX_BODY:
            raise ConfigError(f"unreasonable Content-Length {length}")
        return self.rfile.read(length) if length else b""

    def _send_json(self, obj: Any, status: int = 200,
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, data: bytes) -> None:
        """Stream a binary result with chunked transfer encoding."""
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for off in range(0, len(data), _DOWNLOAD_CHUNK):
            chunk = data[off : off + _DOWNLOAD_CHUNK]
            self.wfile.write(f"{len(chunk):x}\r\n".encode("ascii"))
            self.wfile.write(chunk)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _send_error(self, exc: Exception) -> None:
        status = http_status(exc)
        headers: dict[str, str] = {}
        if isinstance(exc, QueueFullError):
            headers["Retry-After"] = f"{exc.retry_after:.3f}"
        self._send_json(
            {"error": {"type": type(exc).__name__, "message": str(exc)}},
            status=status, headers=headers,
        )

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._route(method)
        except NumarckError as exc:
            self._send_error(exc)
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_json(
                {"error": {"type": type(exc).__name__, "message": str(exc)}},
                status=500,
            )
            return
        if not handled:
            self._send_json(
                {"error": {"type": "NotFound",
                           "message": f"no route {method} {self.path}"}},
                status=404,
            )

    # -- routing -------------------------------------------------------------

    def _route(self, method: str) -> bool:
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        svc = self.service

        if method == "GET" and parts == ["healthz"]:
            self._send_json(svc.health())
            return True
        if not parts or parts[0] != "v1":
            return False
        parts = parts[1:]

        if method == "GET" and parts == ["jobs"]:
            self._send_json({"jobs": svc.list_jobs()})
            return True
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            self._send_json(svc.job_status(parts[1]))
            return True
        if len(parts) == 3 and parts[0] == "jobs":
            if parts[2] == "result" and method == "GET":
                self._send_bytes(svc.job_result(parts[1]))
                return True
            if parts[2] == "cancel" and method == "POST":
                self._read_body()
                self._send_json(svc.cancel_job(parts[1]))
                return True
            return False

        if method == "GET" and parts == ["chains"]:
            self._send_json({"chains": svc.list_chains()})
            return True
        if len(parts) == 2 and parts[0] == "chains":
            if method == "POST":
                body = self._read_body()
                config = self._parse_config(body)
                self._send_json(svc.create_chain(parts[1], config),
                                status=201)
                return True
            if method == "GET":
                self._send_json(svc.chain_stats(parts[1]))
                return True
            return False
        if len(parts) == 3 and parts[0] == "chains":
            if parts[2] == "container" and method == "GET":
                self._send_bytes(svc.chain_container(parts[1]))
                return True
            if parts[2] == "compress" and method == "POST":
                body = self._read_body()
                job = svc.submit_compress(parts[1], body,
                                          self._header_config())
                self._send_json(job.to_dict(), status=202)
                return True
            return False

        if method == "POST" and parts == ["decompress"]:
            body = self._read_body()
            job = svc.submit_decompress(body, self._header_config())
            self._send_json(job.to_dict(), status=202)
            return True
        return False

    def _header_config(self) -> dict[str, Any] | None:
        """Compression config rides the ``X-Numarck-Config`` header (the
        body is the binary payload)."""
        raw = self.headers.get("X-Numarck-Config")
        if raw is None:
            return None
        return self._parse_config(raw.encode("utf-8"))

    @staticmethod
    def _parse_config(body: bytes) -> dict[str, Any] | None:
        if not body:
            return None
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config body is not valid JSON: {exc}") \
                from exc
        if parsed is None:
            return None
        if not isinstance(parsed, dict):
            raise ConfigError("config body must be a JSON object")
        # Accept both a bare config dict and {"config": {...}}.
        inner = parsed.get("config", parsed)
        if not isinstance(inner, dict):
            raise ConfigError("config must be a JSON object")
        return inner or None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class ServiceServer:
    """A :class:`CompressionService` bound to a listening HTTP socket.

    ``port=0`` binds an ephemeral port (the default; read :attr:`port`
    after construction).  Use as a context manager::

        with ServiceServer(ServiceConfig(workers=4)) as srv:
            client = ServiceClient(port=srv.port)
            ...
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = CompressionService(config)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def start(self) -> "ServiceServer":
        self.service.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="numarck-http", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def serve_forever(self) -> None:
        """Run in the foreground (the CLI path); Ctrl-C shuts down."""
        self.service.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self._httpd.server_close()
            self.service.close()


def serve(config: ServiceConfig | None = None, *, host: str = "127.0.0.1",
          port: int = 8765) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = ServiceServer(config, host=host, port=port)
    print(f"numarck service listening on http://{server.host}:{server.port}"
          f" (workers={server.service.config.workers},"
          f" capacity={server.service.config.capacity})")
    server.serve_forever()
