"""Transport-agnostic core of the compression service.

:class:`CompressionService` wires the three service pieces together --
the bounded :class:`~repro.service.jobs.JobQueue`, the per-tenant
:class:`~repro.service.chains.ChainRegistry` and the wire framing -- and
exposes plain-Python methods the HTTP layer (and tests, and embedders)
call directly.  Every failure is an exception from :mod:`repro.errors`;
nothing here knows about status codes.

Semantics of the two job kinds:

``compress``
    Body is one wire-framed array.  The first job on a chain stores it as
    the full checkpoint; later jobs append an encoded delta against the
    chain tail, reusing the chain's cached bin model when the config is
    adaptive.  The job result is a JSON summary; the compressed artefact
    lives on the chain and is downloaded as container bytes.

``decompress``
    Body is container bytes (as produced by the chain download or by
    :func:`repro.io.chain_to_bytes` / ``save_chain``).  The job result is
    a wire payload of *every* decoded state, full checkpoint first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.config import NumarckConfig
from repro.errors import ConfigError
from repro.service.chains import ChainRegistry
from repro.service.jobs import Job, JobQueue
from repro.service.wire import pack_arrays, unpack_arrays
from repro.telemetry.tracer import get_telemetry

__all__ = ["ServiceConfig", "CompressionService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (all keyword-usable, validated)."""

    workers: int = 2
    capacity: int = 32
    retry_after: float = 0.05
    store_dir: str | None = None
    #: default compression config for chains created without one.
    codec: NumarckConfig | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {self.capacity}")
        if self.retry_after <= 0:
            raise ConfigError(
                f"retry_after must be > 0, got {self.retry_after}"
            )


class CompressionService:
    """The service core: submit work, poll jobs, read chains.

    Use as a context manager (or call :meth:`start` / :meth:`close`); the
    queue installs its telemetry router on start and restores the ambient
    telemetry on close.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.queue = JobQueue(capacity=self.config.capacity,
                              workers=self.config.workers,
                              retry_after=self.config.retry_after)
        self.chains = ChainRegistry(self.config.codec,
                                    store_dir=self.config.store_dir)

    def __enter__(self) -> "CompressionService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def start(self) -> "CompressionService":
        self.queue.start()
        return self

    def close(self) -> None:
        self.queue.close()

    # -- job submission ------------------------------------------------------

    def submit_compress(self, chain_id: str, body: bytes,
                        config: dict[str, Any] | None = None) -> Job:
        """Queue a compress job for one wire-framed state array.

        ``config`` (a :meth:`NumarckConfig.to_dict` dict) only applies when
        it creates the chain; submitting a conflicting config to an
        existing chain is a 409.
        """
        cfg = NumarckConfig.from_dict(config) if config is not None else None
        arrays = unpack_arrays(body)
        if len(arrays) != 1:
            raise ConfigError(
                f"compress body must frame exactly one array, "
                f"got {len(arrays)}"
            )
        chain = self.chains.get_or_create(chain_id, cfg)
        state = arrays[0]

        def run() -> bytes:
            with get_telemetry().span("service.job.compress",
                                      chain=chain_id):
                summary = chain.append_state(state)
            return json.dumps(summary).encode("utf-8")

        return self.queue.submit("compress", run, chain_id=chain_id)

    def submit_decompress(self, body: bytes,
                          config: dict[str, Any] | None = None) -> Job:
        """Queue a decompress job for container bytes; result is the wire
        payload of every decoded state."""
        cfg = NumarckConfig.from_dict(config) if config is not None else None
        if not body:
            raise ConfigError("decompress body is empty")

        def run() -> bytes:
            # Imported via repro.io.container lazily inside the job so a
            # corrupt body fails the *job* (observable state + mapped
            # status on result fetch), not the submit.
            from repro.io.container import chain_from_bytes

            with get_telemetry().span("service.job.decompress",
                                      bytes_in=len(body)):
                chain = chain_from_bytes(body, cfg)
                return pack_arrays(chain.iter_states())

        return self.queue.submit("decompress", run)

    # -- jobs ----------------------------------------------------------------

    def job_status(self, job_id: str) -> dict[str, Any]:
        return self.queue.get(job_id).to_dict()

    def job_result(self, job_id: str) -> bytes:
        return self.queue.result(job_id)

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        return self.queue.cancel(job_id).to_dict()

    def list_jobs(self) -> list[dict[str, Any]]:
        return [j.to_dict() for j in self.queue.jobs()]

    # -- chains --------------------------------------------------------------

    def create_chain(self, chain_id: str,
                     config: dict[str, Any] | None = None) -> dict[str, Any]:
        cfg = NumarckConfig.from_dict(config) if config is not None else None
        return self.chains.create(chain_id, cfg).stats()

    def chain_stats(self, chain_id: str) -> dict[str, Any]:
        return self.chains.get(chain_id).stats()

    def list_chains(self) -> list[dict[str, Any]]:
        return self.chains.list()

    def chain_container(self, chain_id: str) -> bytes:
        return self.chains.get(chain_id).container_bytes()

    # -- health --------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness plus graceful-degradation signal.

        ``status`` is ``"ok"`` while the queue accepts work and
        ``"degraded"`` when it is saturated (clients should back off; the
        HTTP layer still answers 200 so orchestrators don't kill a busy
        server).
        """
        q = self.queue.stats()
        return {
            "status": "ok" if q["accepting"] else "degraded",
            "queue": q,
            "chains": len(self.chains),
            "store_dir": self.config.store_dir,
        }
