"""Bit-level packing of fixed-width integer indices.

NUMARCK stores one *B*-bit index per data point (the paper's approximation
precision parameter ``B``, typically 8--10 bits).  NumPy has no native
sub-byte integer arrays, so this package provides vectorised routines to
pack an array of small non-negative integers into a contiguous byte stream
and to recover it exactly.

The layout is little-endian at the bit level: index ``i`` occupies bits
``[i*B, (i+1)*B)`` of the stream, where bit ``k`` is bit ``k % 8`` of byte
``k // 8``.  This matches what a C implementation using shift-or into a
64-bit accumulator would produce and is independent of host endianness.
"""

from repro.bitpack.packing import (
    pack_bits,
    packed_nbytes,
    unpack_bits,
)

__all__ = ["pack_bits", "unpack_bits", "packed_nbytes"]
