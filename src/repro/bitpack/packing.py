"""Vectorised pack/unpack of B-bit unsigned integers.

The implementation avoids Python-level loops over elements: values are
exploded into a ``(n, B)`` bit matrix with broadcasting, flattened to a bit
stream, and folded into bytes with :func:`numpy.packbits` (and the reverse
with :func:`numpy.unpackbits`).  Cost is O(n*B) bit operations performed in
C, which is adequate for checkpoint-sized arrays (tens of millions of
points) and keeps the code portable.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.tracer import get_telemetry

__all__ = ["pack_bits", "unpack_bits", "packed_nbytes"]

_MAX_WIDTH = 32


def _check_width(width: int) -> None:
    if not isinstance(width, (int, np.integer)):
        raise TypeError(f"width must be an int, got {type(width).__name__}")
    if not 1 <= width <= _MAX_WIDTH:
        raise ValueError(f"width must be in [1, {_MAX_WIDTH}], got {width}")


def packed_nbytes(count: int, width: int) -> int:
    """Number of bytes needed to store ``count`` values of ``width`` bits."""
    _check_width(width)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return (count * width + 7) // 8


def pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack non-negative integers into a little-endian-bit byte stream.

    Parameters
    ----------
    values:
        1-D array of non-negative integers, each ``< 2**width``.
    width:
        Bit width ``B`` of each value, ``1 <= B <= 32``.

    Returns
    -------
    bytes
        ``packed_nbytes(len(values), width)`` bytes.
    """
    _check_width(width)
    vals = np.ascontiguousarray(values)
    if vals.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {vals.shape}")
    if vals.size == 0:
        return b""
    if not np.issubdtype(vals.dtype, np.integer):
        raise TypeError(f"values must be integers, got dtype {vals.dtype}")
    tel = get_telemetry()
    with tel.span("bitpack.pack", n_values=vals.size, width=width) as sp:
        vals = vals.astype(np.uint64, copy=False)
        limit = np.uint64(1) << np.uint64(width)
        if vals.max() >= limit:
            raise ValueError(
                f"values exceed {width}-bit range (max={int(vals.max())})")

        # Byte-aligned widths are direct casts (little-endian), ~10x faster
        # than the generic bit-matrix path and bit-identical to it.
        if width == 8:
            out = vals.astype("<u1").tobytes()
        elif width == 16:
            out = vals.astype("<u2").tobytes()
        elif width == 32:
            out = vals.astype("<u4").tobytes()
        else:
            # (n, width) matrix of bits, LSB first within each value.
            shifts = np.arange(width, dtype=np.uint64)
            bits = ((vals[:, None] >> shifts[None, :]) & np.uint64(1)
                    ).astype(np.uint8)
            out = np.packbits(bits.reshape(-1), bitorder="little").tobytes()
        sp.set(bytes_in=vals.size * 8, bytes_out=len(out))
    tel.metrics.counter("bitpack.bytes_packed").inc(len(out))
    return out


def unpack_bits(data: bytes | bytearray | np.ndarray, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Parameters
    ----------
    data:
        Byte stream produced by :func:`pack_bits` (extra trailing bytes are
        ignored; too-short input raises ``ValueError``).
    count:
        Number of values to recover.
    width:
        Bit width used when packing.

    Returns
    -------
    numpy.ndarray
        ``count`` values as ``uint32`` (or ``uint64`` when ``width > 31``
        would overflow the accumulator -- the dtype is always wide enough).
    """
    _check_width(width)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty(0, dtype=np.uint32)
    with get_telemetry().span("bitpack.unpack", n_values=count,
                              width=width) as sp:
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
        need = packed_nbytes(count, width)
        sp.set(bytes_in=need, bytes_out=count * 4)
        if raw.size < need:
            raise ValueError(
                f"need {need} bytes for {count} x {width}-bit values, got {raw.size}")
        if width == 8:
            return raw[:need].astype(np.uint32)
        if width == 16:
            return raw[:need].view("<u2").astype(np.uint32)
        if width == 32:
            return raw[:need].view("<u4").astype(np.uint32)
        bits = np.unpackbits(raw[:need], bitorder="little")[: count * width]
        bits = bits.reshape(count, width).astype(np.uint64)
        shifts = np.arange(width, dtype=np.uint64)
        out = (bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)
        if width <= 32:
            return out.astype(np.uint32)
        return out
