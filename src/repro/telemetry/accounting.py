"""Byte accounting for encoded iterations and container records.

The serialised size of a NUMARCK record is fully determined by its
metadata (point count, index width, exact-value count, table size), so
span attributes and CLI size breakdowns can report *exact* on-disk byte
counts without serialising anything.  The arithmetic here mirrors
:mod:`repro.io.format` field for field; ``tests/test_telemetry.py``
asserts the two never drift apart.

This module must stay free of other ``repro`` imports: it is loaded by
``repro.telemetry.__init__``, which the instrumented hot paths (bitpack,
kmeans, io) import in turn.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FRAME_OVERHEAD",
    "delta_payload_nbytes",
    "full_payload_nbytes",
    "record_nbytes",
    "raw_nbytes",
]

#: per-record framing cost in :mod:`repro.io.container`:
#: tag(4) + payload length(8) + CRC32(4).
FRAME_OVERHEAD = 16


def delta_payload_nbytes(enc) -> int:
    """Exact serialised payload size of one encoded iteration.

    ``enc`` is an :class:`~repro.core.encoder.EncodedIteration` (annotated
    loosely to keep this module import-light for the tracer's hot path).
    """
    n = enc.n_points
    exact_width = 4 if enc.value_bits == 32 else 8
    head = (
        3  # nbits, flags, strategy length
        + len(enc.strategy)
        + 8  # error bound
        + 1 + 8 * len(enc.shape)  # ndim + dims
    )
    body = (
        4 + 8 * int(enc.representatives.size)  # table
        + 8 + exact_width * int(enc.exact_values.size)  # exact values
        + (n + 7) // 8  # incompressibility bitmap
        + (n * enc.nbits + 7) // 8  # packed indices (bitpack.packed_nbytes)
    )
    return head + body


def full_payload_nbytes(data: np.ndarray) -> int:
    """Exact serialised payload size of a full-checkpoint record."""
    arr = np.asarray(data)
    return 1 + 8 * arr.ndim + 8 * arr.size


def record_nbytes(payload_nbytes: int) -> int:
    """On-disk size of a framed record holding ``payload_nbytes`` bytes."""
    return payload_nbytes + FRAME_OVERHEAD


def raw_nbytes(n_points: int, value_bits: int = 64) -> int:
    """Size of the uncompressed iteration the record replaces."""
    return n_points * (value_bits // 8)
