"""Stage-breakdown tables from trace files.

Turns a JSONL trace into the paper-style timing table (NUMARCK Table 3 /
Yuan et al.'s stage breakdown): one row per span name with call count,
total and mean wall time, CPU time, share of traced wall time, and byte
throughput where the spans carried ``bytes_in``/``bytes_out`` attributes.
Formatting goes through :func:`repro.analysis.report.format_table` so CLI
output, benchmark logs and EXPERIMENTS.md all share one look.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["stage_summary", "stage_table", "metrics_table", "trace_totals"]


def _format_table(headers, rows, title=None):
    # Imported lazily: repro.analysis pulls in repro.core, whose modules
    # import repro.telemetry -- a module-level import here would make the
    # cycle load-order sensitive.
    from repro.analysis.report import format_table

    return format_table(headers, rows, title=title)


def _self_wall(span: Mapping[str, Any],
               child_wall: Mapping[Any, float]) -> float:
    """Wall time not covered by child spans (floored at 0 for clock skew)."""
    return max(float(span["wall_s"]) - child_wall.get(span["id"], 0.0), 0.0)


def stage_summary(spans: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate spans by name.

    Returns one dict per stage, ordered by descending total wall time,
    with keys ``stage``, ``calls``, ``wall_s``, ``self_s`` (wall time not
    inside child spans), ``cpu_s``, ``share`` (of root wall time),
    ``bytes_in`` and ``bytes_out``.
    """
    child_wall: dict[Any, float] = {}
    for s in spans:
        parent = s.get("parent")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + float(s["wall_s"])

    root_wall = sum(float(s["wall_s"]) for s in spans
                    if s.get("parent") is None)
    stages: dict[str, dict[str, Any]] = {}
    for s in spans:
        agg = stages.setdefault(s["name"], {
            "stage": s["name"], "calls": 0, "wall_s": 0.0, "self_s": 0.0,
            "cpu_s": 0.0, "bytes_in": 0, "bytes_out": 0,
        })
        agg["calls"] += 1
        agg["wall_s"] += float(s["wall_s"])
        agg["self_s"] += _self_wall(s, child_wall)
        agg["cpu_s"] += float(s.get("cpu_s", 0.0))
        attrs = s.get("attrs") or {}
        for key in ("bytes_in", "bytes_out"):
            value = attrs.get(key)
            if isinstance(value, (int, float)):
                agg[key] += int(value)
    for agg in stages.values():
        agg["share"] = agg["wall_s"] / root_wall if root_wall > 0 else 0.0
    return sorted(stages.values(), key=lambda a: -a["wall_s"])


def stage_table(spans: Sequence[Mapping[str, Any]],
                title: str | None = "stage breakdown") -> str:
    """Render :func:`stage_summary` as a fixed-width table."""
    summary = stage_summary(spans)
    rows = []
    for agg in summary:
        mb_out = agg["bytes_out"] / 1e6
        rows.append([
            agg["stage"],
            agg["calls"],
            f"{agg['wall_s'] * 1e3:.2f}",
            f"{agg['self_s'] * 1e3:.2f}",
            f"{agg['cpu_s'] * 1e3:.2f}",
            f"{agg['share']:.1%}",
            f"{agg['bytes_in'] / 1e6:.2f}",
            f"{mb_out:.2f}",
        ])
    return _format_table(
        ["stage", "calls", "wall ms", "self ms", "cpu ms", "share",
         "MB in", "MB out"],
        rows,
        title=title,
    )


def metrics_table(snapshot: Mapping[str, Any],
                  title: str | None = "metrics") -> str:
    """Render a metrics snapshot (counters/gauges/histogram means)."""
    rows: list[list[object]] = []
    for name, value in (snapshot.get("counters") or {}).items():
        rows.append([name, "counter", f"{value:g}"])
    for name, value in (snapshot.get("gauges") or {}).items():
        rows.append([name, "gauge", f"{value:g}"])
    for name, hist in (snapshot.get("histograms") or {}).items():
        count = hist.get("count", 0)
        mean = hist.get("sum", 0.0) / count if count else 0.0
        rows.append([name, "histogram", f"n={count} mean={mean:g}"])
    if not rows:
        return f"{title}: (none)" if title else "(none)"
    return _format_table(["metric", "kind", "value"], rows, title=title)


def trace_totals(spans: Sequence[Mapping[str, Any]]) -> dict[str, float]:
    """Root-level totals: span count, traced wall seconds, bytes out."""
    root_wall = sum(float(s["wall_s"]) for s in spans
                    if s.get("parent") is None)
    bytes_out = 0
    for s in spans:
        value = (s.get("attrs") or {}).get("bytes_out")
        if isinstance(value, (int, float)):
            bytes_out += int(value)
    return {"spans": float(len(spans)), "root_wall_s": root_wall,
            "bytes_out": float(bytes_out)}
