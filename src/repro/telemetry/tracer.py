"""Span-based tracing for the compression pipeline.

A *span* is one timed stage -- ``encode``, ``strategy.clustering.fit``,
``io.write_record`` -- with wall and CPU time, arbitrary key/value
attributes (bytes in/out, point counts, sweep counts) and a parent link,
so a trace is a tree per top-level operation.  Spans nest through an
ordinary ``with`` block::

    tel = Telemetry()
    with tel.span("encode", n_points=n) as sp:
        with tel.span("encode.fit"):
            ...
        sp.set(bytes_out=payload_size)

The library's hot paths trace through the *ambient* telemetry object
(:func:`get_telemetry`), which defaults to a shared :class:`NullTelemetry`
whose ``span()`` returns one preallocated no-op context manager -- the
disabled path costs a dict build for the call-site attributes and nothing
else, keeping untraced throughput within noise of uninstrumented code.
Tests and embedders instead pass an explicit :class:`Telemetry` via
:func:`set_telemetry` or the scoped :func:`use` context manager.

Setting the ``NUMARCK_TRACE`` environment variable to a file path enables
tracing process-wide: every finished span is appended to that JSONL file
(see :mod:`repro.telemetry.sink`) and the file is flushed at interpreter
exit, so existing scripts gain traces without a single code change.
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None


def _rss_peak_kb() -> float | None:
    """Process high-water RSS in KiB (``None`` where unsupported)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak /= 1024
    return float(peak)

__all__ = [
    "Span",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use",
]


class Span:
    """One timed pipeline stage; a reentrant-unsafe context manager.

    Attributes are free-form; byte counts use the conventional keys
    ``bytes_in`` / ``bytes_out`` so :mod:`repro.telemetry.report` can
    aggregate throughput without knowing every stage.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "attrs",
                 "t_start", "wall_s", "cpu_s", "_cpu_start", "_tel",
                 "_mem_start", "_mem_peak")

    def __init__(self, tel: "Telemetry", name: str, span_id: int,
                 parent_id: int | None, depth: int,
                 attrs: dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self._tel = tel
        self.t_start = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._cpu_start = 0.0
        self._mem_start = 0
        self._mem_peak = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, amount: float) -> None:
        """Accumulate a numeric attribute (missing keys start at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def __enter__(self) -> "Span":
        self._tel._push(self)
        if self._tel._memory:
            # Sample memory before the clocks start so the gauge overhead
            # never pollutes the span's own timing.
            current, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            self._mem_start = current
            self._mem_peak = current
        self.t_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self.t_start
        self.cpu_s = time.process_time() - self._cpu_start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tel._memory:
            self._record_memory()
        self._tel._pop(self)
        return None

    def _record_memory(self) -> None:
        """Attach peak-memory gauges; propagate the peak to the parent.

        ``tracemalloc``'s peak is process-global and we reset it on every
        span entry, so each span only sees the peak since its *youngest
        descendant* entered.  Finished children therefore report their
        observed peak up the open-span stack, and every span's final peak
        is the max over its own segments and all child peaks.
        """
        _, peak = tracemalloc.get_traced_memory()
        peak = max(peak, self._mem_peak)
        self.attrs["mem_py_peak_kb"] = round(
            max(peak - self._mem_start, 0) / 1024, 3)
        rss = _rss_peak_kb()
        if rss is not None:
            self.attrs["mem_rss_peak_kb"] = rss
        tracemalloc.reset_peak()
        stack = self._tel._stack()
        if len(stack) >= 2 and stack[-1] is self:
            parent = stack[-2]
            parent._mem_peak = max(parent._mem_peak, peak)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (one JSONL trace line)."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "t_start": self.t_start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, wall={self.wall_s:.6f}s, "
                f"attrs={self.attrs})")


class _NullSpan:
    """Shared, allocation-free stand-in used when tracing is disabled."""

    __slots__ = ()
    name = ""
    wall_s = 0.0
    cpu_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add(self, key: str, amount: float) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    A single module-level instance (:data:`NULL_TELEMETRY`) is the ambient
    default, so instrumented code never branches on "is tracing on" -- it
    always opens a span and the null implementation throws the work away.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()
        self.spans: tuple[Span, ...] = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Telemetry:
    """In-memory span collector with an optional streaming sink.

    Parameters
    ----------
    sink:
        Object with ``write(record: dict)`` / ``flush()`` / ``close()``
        (e.g. :class:`repro.telemetry.sink.JsonlSink`).  Every finished
        span is forwarded to it in completion order; ``close()`` also
        writes one final metrics-snapshot record.
    keep_spans:
        Retain finished spans in :attr:`spans` (default).  Long-running
        producers that only stream to a sink can turn this off to bound
        memory.
    memory:
        Attach peak-memory gauges to every span: ``mem_py_peak_kb``
        (peak python-heap growth inside the span, via ``tracemalloc``)
        and ``mem_rss_peak_kb`` (process high-water RSS).  Starts
        ``tracemalloc`` if it is not already tracing (and stops it again
        on :meth:`close`).  Tracing allocations slows allocation-heavy
        code noticeably, so timing-sensitive runs should measure time
        and memory in separate passes (``repro.bench`` does).
    """

    enabled = True

    def __init__(self, sink=None, *, keep_spans: bool = True,
                 memory: bool = False) -> None:
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self._sink = sink
        self._keep_spans = keep_spans
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._memory = bool(memory)
        self._started_tracemalloc = False
        if self._memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; it starts timing on ``__enter__``."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id,
                    parent.span_id if parent else None,
                    len(stack), attrs)

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested exit
            stack.remove(span)
        with self._lock:
            if self._keep_spans:
                self.spans.append(span)
            if self._sink is not None:
                self._sink.write(span.to_dict())

    @property
    def sink(self):
        """The streaming sink (or ``None``).  Exposed so wrappers -- e.g.
        the service's per-job span router -- can tee into an existing
        sink without owning its lifecycle."""
        return self._sink

    # -- export ------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Finished spans plus the metrics snapshot, as trace dicts."""
        with self._lock:
            out = [s.to_dict() for s in self.spans]
        snapshot = self.metrics.snapshot()
        if any(snapshot.values()):
            out.append({"type": "metrics", **snapshot})
        return out

    def export(self, path) -> int:
        """Write every finished span (and metrics) to a JSONL file.

        Returns the number of records written.  Unlike a streaming sink
        this rewrites ``path`` from scratch, which is what tests and
        one-shot benchmark scripts want.
        """
        from repro.telemetry.sink import JsonlSink

        records = self.records()
        sink = JsonlSink(path, append=False)
        try:
            for rec in records:
                sink.write(rec)
        finally:
            sink.close()
        return len(records)

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            snapshot = self.metrics.snapshot()
            if any(snapshot.values()):
                self._sink.write({"type": "metrics", **snapshot})
            self._sink.close()
            self._sink = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False


#: process-wide disabled default; see :func:`get_telemetry`.
NULL_TELEMETRY = NullTelemetry()

_ambient: Telemetry | NullTelemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry | NullTelemetry:
    """The ambient telemetry object instrumented code traces through."""
    return _ambient


def set_telemetry(tel: Telemetry | NullTelemetry | None
                  ) -> Telemetry | NullTelemetry:
    """Install ``tel`` as the ambient telemetry; returns the previous one.

    ``None`` restores the disabled default.
    """
    global _ambient
    previous = _ambient
    _ambient = tel if tel is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use(tel: Telemetry | NullTelemetry) -> Iterator[Telemetry | NullTelemetry]:
    """Scoped :func:`set_telemetry`: restores the previous object on exit."""
    previous = set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(previous)
