"""Observability for the compression pipeline: spans, metrics, traces.

NUMARCK's headline results are *timing* results -- the paper (and its
parallel follow-up) break compression cost into change-ratio computation,
clustering, encoding and I/O.  This package instruments those stages:

* **Spans** (:mod:`repro.telemetry.tracer`): nested, attributed timers
  around every hot path -- ``codec.compress`` > ``encode`` >
  ``encode.fit`` > ``kmeans.lloyd``, plus bit packing, container writes
  and incremental persistence.
* **Metrics** (:mod:`repro.telemetry.metrics`): counters, gauges and
  fixed-bucket histograms -- bytes written, ``fsync`` count, records
  salvaged, Lloyd sweeps to convergence, incompressible fraction.
  Fault-tolerant communication adds ``comm.rank_failures``,
  ``comm.transient_retries``, ``comm.resends``, ``comm.crc_errors``,
  ``spmd.respawns``, ``insitu.degraded_encodes`` and the
  ``comm.failure_detect_s`` detection-latency histogram, plus
  zero-duration ``comm.rank_failure`` spans marking each first
  detection.
* **Trace export** (:mod:`repro.telemetry.sink`): append-only JSONL with
  torn-tail-tolerant reading, mirroring the checkpoint store's
  crash-consistency discipline.
* **Reports** (:mod:`repro.telemetry.report`): paper-style stage
  breakdown tables from a trace (also behind ``repro stats <trace>``).

The ambient default is a no-op tracer, so untraced runs pay nothing
measurable.  Enable tracing explicitly::

    from repro.telemetry import Telemetry, use

    tel = Telemetry()
    with use(tel):
        compressor.compress(prev, curr)
    tel.export("trace.jsonl")

or process-wide, without touching code, via the environment::

    NUMARCK_TRACE=trace.jsonl python examples/quickstart.py
    python -m repro stats trace.jsonl
"""

from __future__ import annotations

import atexit
import os

from repro.telemetry.accounting import (
    FRAME_OVERHEAD,
    delta_payload_nbytes,
    full_payload_nbytes,
    raw_nbytes,
    record_nbytes,
)
from repro.telemetry.analysis import (
    SpanNode,
    critical_path,
    diff_table,
    diff_traces,
    folded_stacks,
    self_time_ranking,
    span_tree,
    stage_rollup,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.report import (
    metrics_table,
    stage_summary,
    stage_table,
    trace_totals,
)
from repro.telemetry.sink import JsonlSink, read_spans, read_trace
from repro.telemetry.tracer import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Span",
    "get_telemetry",
    "set_telemetry",
    "use",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "JsonlSink",
    "read_trace",
    "read_spans",
    "stage_summary",
    "stage_table",
    "metrics_table",
    "trace_totals",
    "SpanNode",
    "span_tree",
    "stage_rollup",
    "critical_path",
    "folded_stacks",
    "self_time_ranking",
    "diff_traces",
    "diff_table",
    "delta_payload_nbytes",
    "full_payload_nbytes",
    "record_nbytes",
    "raw_nbytes",
    "FRAME_OVERHEAD",
]

#: environment variable that enables process-wide tracing to a JSONL file.
TRACE_ENV_VAR = "NUMARCK_TRACE"

#: set to a truthy value alongside :data:`TRACE_ENV_VAR` to also attach
#: per-span peak-memory gauges (``tracemalloc`` heap + RSS high-water).
TRACE_MEMORY_ENV_VAR = "NUMARCK_TRACE_MEMORY"


def _activate_from_env() -> None:
    path = os.environ.get(TRACE_ENV_VAR)
    if not path:
        return
    memory = os.environ.get(TRACE_MEMORY_ENV_VAR, "").lower() in (
        "1", "true", "yes", "on")
    tel = Telemetry(sink=JsonlSink(path), keep_spans=False, memory=memory)
    set_telemetry(tel)
    atexit.register(tel.close)


_activate_from_env()
