"""Append-only JSONL trace persistence.

One JSON object per line, written with the same durability discipline as
the checkpoint store (:mod:`repro.io.durable`): lines are buffered and
flushed in batches, ``flush`` can ``fsync``, transient ``OSError``\\ s are
retried with bounded backoff, and -- because a crash can tear at most the
line being written -- :func:`read_trace` salvages a torn trailing line
instead of failing the whole trace.  A trace file can therefore be
appended to by successive runs and still parse after any of them died
mid-write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["JsonlSink", "read_trace", "read_spans"]


class JsonlSink:
    """Buffered append-only JSONL writer.

    Parameters
    ----------
    path:
        Target file; parent directories are created on first write.
    append:
        Keep existing lines (default).  ``False`` truncates first, for
        one-shot exports.
    sync:
        ``fsync`` on every flush (default flushes to the OS only; the
        trace is diagnostic data, not the checkpoint of record).
    flush_every:
        Buffered line count that triggers an automatic flush.
    """

    def __init__(self, path: str | Path, *, append: bool = True,
                 sync: bool = False, flush_every: int = 128) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self._append = append
        self._sync = sync
        self._flush_every = flush_every
        self._buffer: list[str] = []
        self._fh = None
        self.lines_written = 0

    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab" if self._append else "wb")
        return self._fh

    def write(self, record: dict[str, Any]) -> None:
        """Queue one record; flushes automatically every ``flush_every``."""
        self._buffer.append(json.dumps(record, separators=(",", ":"),
                                       default=str))
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines out (retrying transient errors)."""
        if not self._buffer:
            return
        # Imported lazily: repro.io pulls in the whole core package, which
        # itself imports repro.telemetry -- a module-level import here
        # would make that cycle load-order sensitive.
        from repro.io.durable import retry_io

        data = ("\n".join(self._buffer) + "\n").encode("utf-8")
        n_lines = len(self._buffer)
        fh = self._open()

        def _write() -> None:
            fh.write(data)
            fh.flush()
            if self._sync:
                os.fsync(fh.fileno())

        retry_io(_write)
        self.lines_written += n_lines
        self._buffer.clear()

    def close(self) -> None:
        try:
            self.flush()
        finally:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace; a torn *final* line is dropped, not fatal.

    Corrupt lines before the last one raise ``ValueError`` -- like the
    checkpoint container, damage followed by intact data means the file
    was mangled, not interrupted.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = fh.read().split("\n")
    # A trailing newline leaves one empty final element; drop it.
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # torn tail from an interrupted append
            raise ValueError(
                f"{path}: corrupt trace line {i + 1}: {exc}") from exc
    return records


def read_spans(path: str | Path) -> list[dict[str, Any]]:
    """Just the span records of a trace (see :func:`read_trace`)."""
    return [r for r in read_trace(path) if r.get("type") == "span"]
