"""Counters, gauges and fixed-bucket histograms.

The registry is deliberately small: NUMARCK's interesting numbers are a
handful of monotone totals (bytes written, ``fsync`` calls, records
salvaged), point-in-time values (last incompressible fraction) and shape
statistics (Lloyd sweeps to convergence, per-iteration gamma).  All
instruments are get-or-create by name so instrumentation sites never need
to coordinate registration::

    reg = MetricsRegistry()
    reg.counter("io.bytes_written").inc(4096)
    reg.histogram("kmeans.sweeps", buckets=(1, 2, 4, 8, 16, 32)).observe(5)
    reg.snapshot()          # plain dicts, JSON-ready

A :class:`NullMetricsRegistry` mirrors the API with no-ops for the
disabled path.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: default histogram buckets: powers of four spanning "a few" to "millions"
#: -- wide enough for sweep counts, byte sizes and point counts alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """Monotone accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/count for mean recovery.

    ``buckets`` are upper bounds of each bucket; observations above the
    last bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs buckets")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: buckets must increase")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Thread-safe, name-keyed collection of instruments."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.count,
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }


class _NullInstrument:
    """One object answering for disabled counters, gauges and histograms."""

    __slots__ = ()
    name = ""
    value = 0.0
    total = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Registry whose instruments discard everything."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
