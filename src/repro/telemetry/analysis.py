"""Trace analytics: span trees, critical paths, flamegraphs, trace diffs.

:mod:`repro.telemetry.report` renders one trace as a flat per-stage
table; this module answers the *structural* questions performance work
actually asks:

* **Where does a trace's time live?**  :func:`span_tree` rebuilds the
  span forest from a JSONL trace (tolerant of out-of-order records and
  orphaned spans from crashed runs), :func:`stage_rollup` aggregates
  self/total time per stage, and :func:`critical_path` walks the
  heaviest chain from the heaviest root.
* **What does it look like?**  :func:`folded_stacks` emits
  ``parent;child;leaf <self µs>`` lines consumable by any flamegraph
  renderer (Brendan Gregg's ``flamegraph.pl``, speedscope, ...).
* **What changed?**  :func:`diff_traces` attributes the wall-time delta
  between two traces to specific stages by differencing per-stage *self*
  time -- self times partition the trace, so the per-stage deltas sum to
  the root-wall delta instead of double-counting parents and children.

All functions accept the plain record dicts returned by
:func:`repro.telemetry.sink.read_trace` (non-span records are ignored),
so a trace file round-trips straight into analysis::

    from repro.telemetry import read_trace
    from repro.telemetry.analysis import diff_table

    print(diff_table(read_trace("before.jsonl"), read_trace("after.jsonl")))
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.report import stage_summary

__all__ = [
    "SpanNode",
    "span_tree",
    "stage_rollup",
    "critical_path",
    "folded_stacks",
    "self_time_ranking",
    "diff_traces",
    "diff_table",
]


def _spans(records: Iterable[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
    return [r for r in records if r.get("type") == "span" or
            ("type" not in r and "wall_s" in r)]


class SpanNode:
    """One span in a reconstructed trace tree."""

    __slots__ = ("record", "children")

    def __init__(self, record: Mapping[str, Any]) -> None:
        self.record = record
        self.children: list[SpanNode] = []

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def wall_s(self) -> float:
        return float(self.record.get("wall_s", 0.0))

    @property
    def self_s(self) -> float:
        """Wall time not covered by children (floored at 0 for skew)."""
        return max(self.wall_s - sum(c.wall_s for c in self.children), 0.0)

    def walk(self) -> Iterable["SpanNode"]:
        """Depth-first iteration over this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanNode({self.name!r}, wall={self.wall_s:.6f}s, "
                f"children={len(self.children)})")


def span_tree(records: Sequence[Mapping[str, Any]]) -> list[SpanNode]:
    """Rebuild the span forest; returns the roots ordered by start time.

    Spans link by id, so record *order* in the file is irrelevant (sinks
    write spans in completion order, children before parents).  A span
    whose parent id never appears -- e.g. the parent was still open when
    the producer crashed, or the head of the trace was lost -- becomes a
    root rather than being dropped, so partial traces still analyse.
    """
    spans = _spans(records)
    nodes = {r["id"]: SpanNode(r) for r in spans if "id" in r}
    roots: list[SpanNode] = []
    for r in spans:
        node = nodes.get(r.get("id"))
        if node is None or node.record is not r:
            node = SpanNode(r)  # id-less or duplicate-id record
        parent = nodes.get(r.get("parent"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.record.get("t_start", 0.0))
    roots.sort(key=lambda n: n.record.get("t_start", 0.0))
    return roots


def stage_rollup(records: Sequence[Mapping[str, Any]]
                 ) -> dict[str, dict[str, Any]]:
    """Per-stage aggregates keyed by stage name.

    Each value carries ``calls``, ``wall_s`` (total), ``self_s`` (wall
    time not inside child spans), ``cpu_s``, ``share``, ``bytes_in``,
    ``bytes_out`` and -- when the trace carries memory gauges --
    ``mem_py_peak_kb`` (max over the stage's spans).
    """
    spans = _spans(records)
    rollup = {agg["stage"]: agg for agg in stage_summary(spans)}
    for s in spans:
        attrs = s.get("attrs") or {}
        peak = attrs.get("mem_py_peak_kb")
        if isinstance(peak, (int, float)):
            agg = rollup.get(s.get("name"))
            if agg is not None:
                agg["mem_py_peak_kb"] = max(
                    agg.get("mem_py_peak_kb", 0.0), float(peak))
    return rollup


def critical_path(records: Sequence[Mapping[str, Any]]
                  ) -> list[dict[str, Any]]:
    """The heaviest root-to-leaf chain, as one dict per hop.

    Starting from the root with the largest wall time, repeatedly descend
    into the heaviest child.  Each entry has ``name``, ``wall_s``,
    ``self_s`` and ``depth``; the first entry is the root.  Empty traces
    yield an empty list.
    """
    roots = span_tree(records)
    if not roots:
        return []
    node = max(roots, key=lambda n: n.wall_s)
    path: list[dict[str, Any]] = []
    depth = 0
    while True:
        path.append({"name": node.name, "wall_s": node.wall_s,
                     "self_s": node.self_s, "depth": depth})
        if not node.children:
            return path
        node = max(node.children, key=lambda n: n.wall_s)
        depth += 1


def folded_stacks(records: Sequence[Mapping[str, Any]],
                  *, scale: float = 1e6) -> list[str]:
    """Flamegraph-compatible folded stacks: ``a;b;c <self-time>`` lines.

    Values are self times in microseconds (``scale=1e6``); identical
    stacks are merged by summing.  Feed the result straight to
    ``flamegraph.pl`` or paste it into speedscope.
    """
    totals: dict[str, float] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        totals[stack] = totals.get(stack, 0.0) + node.self_s
        for child in node.children:
            visit(child, stack)

    for root in span_tree(records):
        visit(root, "")
    return [f"{stack} {round(value * scale)}"
            for stack, value in sorted(totals.items())]


def self_time_ranking(records: Sequence[Mapping[str, Any]],
                      top: int | None = None) -> list[dict[str, Any]]:
    """Stages ordered by descending *self* time (the optimisation queue).

    ``top`` truncates the ranking; each entry is a :func:`stage_rollup`
    aggregate.
    """
    ranked = sorted(stage_rollup(records).values(),
                    key=lambda a: -a["self_s"])
    return ranked[:top] if top is not None else ranked


def diff_traces(a_records: Sequence[Mapping[str, Any]],
                b_records: Sequence[Mapping[str, Any]],
                ) -> list[dict[str, Any]]:
    """Attribute the wall-time delta between two traces to stages.

    Returns one dict per stage present in either trace, ordered by
    descending absolute self-time delta, with keys ``stage``,
    ``calls_a``/``calls_b``, ``self_a``/``self_b``, ``delta_self``
    (``b - a``; positive means B is slower there), ``total_a``/
    ``total_b`` and ``share`` -- the stage's fraction of the summed
    absolute self-time delta, i.e. how much of the trace-level change
    this stage explains.  Because self times partition each trace, the
    signed ``delta_self`` values sum to the root-wall delta.
    """
    a_roll = stage_rollup(a_records)
    b_roll = stage_rollup(b_records)
    zero = {"calls": 0, "wall_s": 0.0, "self_s": 0.0, "cpu_s": 0.0}
    out: list[dict[str, Any]] = []
    for stage in sorted(set(a_roll) | set(b_roll)):
        a = a_roll.get(stage, zero)
        b = b_roll.get(stage, zero)
        out.append({
            "stage": stage,
            "calls_a": a["calls"], "calls_b": b["calls"],
            "self_a": a["self_s"], "self_b": b["self_s"],
            "delta_self": b["self_s"] - a["self_s"],
            "total_a": a["wall_s"], "total_b": b["wall_s"],
        })
    total_abs = sum(abs(d["delta_self"]) for d in out)
    for d in out:
        d["share"] = abs(d["delta_self"]) / total_abs if total_abs > 0 else 0.0
    out.sort(key=lambda d: -abs(d["delta_self"]))
    return out


def diff_table(a_records: Sequence[Mapping[str, Any]],
               b_records: Sequence[Mapping[str, Any]],
               *, top: int | None = None,
               labels: tuple[str, str] = ("A", "B"),
               title: str | None = "trace diff") -> str:
    """Render :func:`diff_traces` as a fixed-width table."""
    # Imported lazily: repro.analysis pulls in repro.core, whose modules
    # import repro.telemetry -- a module-level import here would make the
    # cycle load-order sensitive.
    from repro.analysis.report import format_table

    diffs = diff_traces(a_records, b_records)
    if top is not None:
        diffs = diffs[:top]
    la, lb = labels
    rows = []
    for d in diffs:
        rows.append([
            d["stage"],
            f"{d['calls_a']}/{d['calls_b']}",
            f"{d['self_a'] * 1e3:.2f}",
            f"{d['self_b'] * 1e3:.2f}",
            f"{d['delta_self'] * 1e3:+.2f}",
            f"{d['share']:.1%}",
        ])
    return format_table(
        ["stage", f"calls {la}/{lb}", f"self ms {la}", f"self ms {lb}",
         "delta ms", "share"],
        rows, title=title,
    )
