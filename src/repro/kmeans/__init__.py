"""From-scratch k-means clustering substrate.

NUMARCK's best-performing approximation strategy clusters the change-ratio
distribution with k-means seeded from an equal-width histogram (paper
Section II-C3, citing the authors' own parallel k-means MPI package).
scikit-learn is not available in this environment, so this package provides
the complete algorithm:

* :func:`kmeans1d` / :func:`kmeans` -- vectorised Lloyd iterations for 1-D
  (the NUMARCK case: change ratios are scalars) and general n-D data.
* :mod:`repro.kmeans.init` -- centroid initialisation: equal-width
  histogram prior (the paper's choice), k-means++, and uniform random.
* :func:`parallel_kmeans1d` -- data-parallel Lloyd driver over a
  :class:`repro.parallel.Comm`, mirroring the paper's MPI formulation
  (local assign + local partial sums, allreduce of sums/counts).

1-D assignment uses ``searchsorted`` against sorted centroid midpoints,
which is O(n log k) instead of the O(n k) distance matrix and is the main
reason the clustering strategy stays fast at checkpoint scale.
"""

from repro.kmeans.init import (histogram_init, kmeanspp_init, random_init,
                               warm_start_init)
from repro.kmeans.lloyd import KMeansResult, assign1d, kmeans, kmeans1d
from repro.kmeans.parallel import parallel_kmeans1d

__all__ = [
    "KMeansResult",
    "kmeans",
    "kmeans1d",
    "assign1d",
    "histogram_init",
    "kmeanspp_init",
    "random_init",
    "warm_start_init",
    "parallel_kmeans1d",
]
