"""Data-parallel k-means over a :class:`repro.parallel.Comm`.

This mirrors the MPI formulation in the parallel k-means package the paper
cites: every rank holds a shard of the data, assignment is purely local,
and the centroid update allreduces per-cluster (sum, count) pairs so all
ranks step to identical centroids each iteration.  With ``SerialComm`` the
result is bit-identical to :func:`repro.kmeans.kmeans1d` on the
concatenated data, which the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from repro.kmeans.lloyd import KMeansResult, assign1d
from repro.parallel.comm import Comm, SerialComm
from repro.telemetry.tracer import get_telemetry

__all__ = ["parallel_kmeans1d"]


def _local_sums(data: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Stack of per-cluster (sum, count) rows for this rank's shard."""
    out = np.zeros((k, 2), dtype=np.float64)
    out[:, 0] = np.bincount(labels, weights=data, minlength=k)
    out[:, 1] = np.bincount(labels, minlength=k)
    return out


def parallel_kmeans1d(
    comm: Comm | None,
    local_data: np.ndarray,
    centroids: np.ndarray,
    max_iter: int = 50,
    tol: float = 1e-10,
    on_rank_failure: str = "raise",
) -> KMeansResult:
    """Distributed Lloyd's algorithm on scalar data.

    Parameters
    ----------
    comm:
        Communicator; every rank must call with its own shard.  ``None``
        means :class:`SerialComm`.
    local_data:
        This rank's shard (1-D float array; may be empty on some ranks as
        long as the global data set is non-empty).
    centroids:
        Initial centroids; must be identical on all ranks (typically rank 0
        computes them from a sample and broadcasts).
    on_rank_failure:
        ``"raise"`` (default) propagates
        :class:`~repro.parallel.faults.RankFailureError` when a peer rank
        is lost mid-iteration.  ``"degrade"`` routes every allreduce
        through the failure-absorbing degraded collectives: the moments of
        lost ranks simply stop contributing, the survivors keep stepping
        to identical centroids, and the per-point guarantee downstream is
        untouched (the centroids only steer bin placement).

    Returns
    -------
    KMeansResult
        ``labels`` are for the *local* shard; ``centroids``, ``inertia``
        and convergence flags are global and identical on every rank
        (every *surviving* rank, under ``"degrade"``).
    """
    comm = comm if comm is not None else SerialComm()
    if on_rank_failure not in ("raise", "degrade"):
        raise ValueError(f"unknown on_rank_failure {on_rank_failure!r}")
    allreduce = (comm.allreduce_degraded if on_rank_failure == "degrade"
                 else comm.allreduce)
    arr = np.asarray(local_data, dtype=np.float64).ravel()
    cent = np.sort(np.asarray(centroids, dtype=np.float64).ravel())
    k = cent.size
    if k < 1:
        raise ValueError("need at least one centroid")
    n_global = allreduce(arr.size)
    if n_global == 0:
        raise ValueError("global data set is empty")

    tel = get_telemetry()
    with tel.span("kmeans.parallel", n_points=int(n_global), k=k,
                  n_local=arr.size) as tspan:
        # Global data span for the relative movement tolerance.
        local_lo = float(arr.min()) if arr.size else np.inf
        local_hi = float(arr.max()) if arr.size else -np.inf
        lo = allreduce(local_lo, op=min)
        hi = allreduce(local_hi, op=max)
        span = hi - lo
        move_tol = tol * (span if span > 0 else 1.0)

        # Like kmeans1d, the global per-sweep inertia falls out of the
        # allreduced moments: sumsq - 2 c.S + n.c^2.  Reducing the moments
        # *after* assignment (and reusing them for the next update) keeps
        # it at one allreduce per sweep.
        local_sumsq = float(np.sum(arr * arr)) if arr.size else 0.0
        sumsq = allreduce(local_sumsq)
        labels = assign1d(arr, cent) if arr.size else np.empty(0, dtype=np.int32)
        sums = allreduce(_local_sums(arr, labels, k))
        history: list[float] = []
        n_iter = 0
        converged = False
        for n_iter in range(1, max_iter + 1):
            new = cent.copy()
            nonempty = sums[:, 1] > 0
            new[nonempty] = sums[nonempty, 0] / sums[nonempty, 1]
            new = np.sort(new)
            move = float(np.max(np.abs(new - cent)))
            cent = new
            labels = assign1d(arr, cent) if arr.size else labels
            sums = allreduce(_local_sums(arr, labels, k))
            history.append(max(
                sumsq - 2.0 * float(cent @ sums[:, 0])
                + float(sums[:, 1] @ (cent * cent)),
                0.0,
            ))
            if move <= move_tol:
                converged = True
                break
        local_inertia = float(np.sum((arr - cent[labels]) ** 2)) if arr.size else 0.0
        inertia = allreduce(local_inertia)
        tspan.set(n_iter=n_iter, converged=converged, inertia=inertia)
    tel.metrics.histogram("kmeans.sweeps",
                          buckets=(1, 2, 4, 8, 16, 32, 64)).observe(n_iter)
    return KMeansResult(cent, labels, inertia, n_iter, converged,
                        inertia_history=tuple(history))
