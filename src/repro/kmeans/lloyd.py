"""Lloyd's algorithm, specialised for 1-D data plus a general n-D fallback.

The 1-D specialisation matters: NUMARCK clusters *scalar* change ratios
with k up to 2^B - 1 (255 or 511), and the O(n k) distance matrix of the
textbook formulation would dominate compression time.  For sorted
centroids, the nearest centroid of a scalar x is found by binary search
against the midpoints between adjacent centroids, giving O(n log k)
assignment with two NumPy calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.tracer import get_telemetry

__all__ = ["KMeansResult", "assign1d", "kmeans1d", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    centroids:
        ``(k,)`` (1-D) or ``(k, d)`` array, sorted ascending in the 1-D case.
    labels:
        ``(n,)`` int32 cluster index per input point.
    inertia:
        Sum of squared distances to the assigned centroid.
    n_iter:
        Lloyd iterations executed.
    converged:
        True if centroid movement fell below tolerance before ``max_iter``.
    inertia_history:
        Inertia at the end of each Lloyd sweep, ``len == n_iter``.  The
        trajectory is non-increasing up to floating-point noise; telemetry
        uses it as the convergence signal ("how many sweeps bought how
        much"), and it is cheap: the 1-D path derives each entry from the
        per-cluster moments the update step already computes.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool
    inertia_history: tuple[float, ...] = ()


def assign1d(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid labels for scalar data against *sorted* centroids.

    Ties at a midpoint go to the lower centroid (``searchsorted`` with
    ``side='left'`` keeps the midpoint itself in the left bin); any
    consistent rule works for Lloyd convergence.
    """
    data = np.asarray(data, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    if centroids.ndim != 1 or centroids.size == 0:
        raise ValueError("centroids must be a non-empty 1-D array")
    if centroids.size == 1:
        return np.zeros(data.shape, dtype=np.int32)
    mids = 0.5 * (centroids[:-1] + centroids[1:])
    return np.searchsorted(mids, data, side="left").astype(np.int32)


def _moments(data: np.ndarray, labels: np.ndarray, k: int,
             weights: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster (weighted) counts and value sums under ``labels``."""
    if weights is None:
        counts = np.bincount(labels, minlength=k).astype(np.float64)
        sums = np.bincount(labels, weights=data, minlength=k)
    else:
        counts = np.bincount(labels, weights=weights, minlength=k)
        sums = np.bincount(labels, weights=data * weights, minlength=k)
    return counts, sums


def kmeans1d(
    data: np.ndarray,
    centroids: np.ndarray | None = None,
    max_iter: int = 50,
    tol: float = 1e-10,
    weights: np.ndarray | None = None,
    *,
    warm_start: np.ndarray | None = None,
    k: int | None = None,
) -> KMeansResult:
    """Lloyd's algorithm on scalar data from explicit initial centroids.

    Parameters
    ----------
    data:
        1-D float array of points to cluster.
    centroids:
        Initial centroids (will be sorted); ``k = len(centroids)``.
        Mutually exclusive with ``warm_start``.
    max_iter:
        Maximum Lloyd iterations.
    tol:
        Convergence threshold on the maximum absolute centroid movement,
        relative to the data range.
    weights:
        Optional non-negative per-point weights -- clustering a weighted
        histogram of n bins is then equivalent to clustering the full
        dataset it summarises (used by the sketch-based distributed fit).
    warm_start:
        Previously fitted centroids to restart from (the adaptive reuse
        engine's refit path).  They are clipped to the new data range and
        padded/deduplicated to ``k`` seeds via
        :func:`~repro.kmeans.init.warm_start_init`.
    k:
        Target centroid count for ``warm_start`` (defaults to the number
        of distinct warm-start centers).  Ignored with ``centroids``.

    Notes
    -----
    Centroids are re-sorted after every update so the midpoint-search
    assignment stays valid.  Sorting k scalars is negligible next to the
    O(n log k) assignment.
    """
    arr = np.asarray(data, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot cluster empty data")
    if warm_start is not None:
        if centroids is not None:
            raise ValueError("pass either centroids or warm_start, not both")
        from repro.kmeans.init import warm_start_init

        cached = np.asarray(warm_start, dtype=np.float64).ravel()
        target_k = k if k is not None else max(int(np.unique(cached).size), 1)
        centroids = warm_start_init(arr, target_k, cached)
        get_telemetry().metrics.counter("kmeans.warm_starts").inc()
    elif centroids is None:
        raise ValueError("kmeans1d needs initial centroids (or warm_start=)")
    w = None
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64).ravel()
        if w.shape != arr.shape:
            raise ValueError(f"weights shape {w.shape} != data shape {arr.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    cent = np.sort(np.asarray(centroids, dtype=np.float64).ravel())
    k = cent.size
    if k < 1:
        raise ValueError("need at least one centroid")
    tel = get_telemetry()
    with tel.span("kmeans.lloyd", n_points=arr.size, k=k,
                  bytes_in=arr.nbytes) as tspan:
        span = float(arr.max() - arr.min())
        move_tol = tol * (span if span > 0 else 1.0)

        # sum w x^2 once; with the per-cluster moments (n_c, S_c) the
        # inertia after any sweep is sumsq - 2 c.S + n.c^2, so the history
        # costs two k-sized dot products per sweep instead of an O(n) pass.
        sumsq = float(np.sum(arr * arr if w is None else arr * arr * w))
        labels = assign1d(arr, cent)
        counts, sums = _moments(arr, labels, k, w)
        history: list[float] = []
        n_iter = 0
        converged = False
        for n_iter in range(1, max_iter + 1):
            new = cent.copy()
            nonempty = counts > 0
            new[nonempty] = sums[nonempty] / counts[nonempty]
            new = np.sort(new)
            move = float(np.max(np.abs(new - cent))) if k else 0.0
            cent = new
            labels = assign1d(arr, cent)
            counts, sums = _moments(arr, labels, k, w)
            history.append(max(
                sumsq - 2.0 * float(cent @ sums) + float(counts @ (cent * cent)),
                0.0,
            ))
            if move <= move_tol:
                converged = True
                break
        sq = (arr - cent[labels]) ** 2
        inertia = float(np.sum(sq if w is None else sq * w))
        tspan.set(n_iter=n_iter, converged=converged, inertia=inertia)
    tel.metrics.histogram("kmeans.sweeps",
                          buckets=(1, 2, 4, 8, 16, 32, 64)).observe(n_iter)
    if converged:
        tel.metrics.counter("kmeans.converged_runs").inc()
    return KMeansResult(cent, labels, inertia, n_iter, converged,
                        inertia_history=tuple(history))


def kmeans(
    data: np.ndarray,
    centroids: np.ndarray,
    max_iter: int = 50,
    tol: float = 1e-8,
) -> KMeansResult:
    """General n-D Lloyd's algorithm (O(n k d) per iteration).

    Provided for completeness (e.g. clustering multi-variable change
    vectors, an extension the paper's future-work section gestures at); the
    compression pipeline itself always uses :func:`kmeans1d`.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.size == 0:
        raise ValueError("cannot cluster empty data")
    cent = np.asarray(centroids, dtype=np.float64)
    if cent.ndim == 1:
        cent = cent[:, None]
    if cent.shape[1] != arr.shape[1]:
        raise ValueError(
            f"dimension mismatch: data has d={arr.shape[1]}, centroids d={cent.shape[1]}"
        )
    k = cent.shape[0]
    scale = float(np.max(np.ptp(arr, axis=0))) if arr.shape[0] > 1 else 1.0
    move_tol = tol * (scale if scale > 0 else 1.0)

    labels = np.zeros(arr.shape[0], dtype=np.int32)
    n_iter = 0
    converged = False
    history: list[float] = []
    with get_telemetry().span("kmeans.nd", n_points=arr.shape[0], k=k,
                              d=arr.shape[1], bytes_in=arr.nbytes):
        for n_iter in range(1, max_iter + 1):
            # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; drop the x term for argmin.
            d2 = -2.0 * arr @ cent.T + np.sum(cent * cent, axis=1)[None, :]
            labels = np.argmin(d2, axis=1).astype(np.int32)
            new = cent.copy()
            for j in range(k):
                members = labels == j
                if members.any():
                    new[j] = arr[members].mean(axis=0)
            move = float(np.max(np.abs(new - cent)))
            cent = new
            sweep_diffs = arr - cent[labels]
            history.append(float(np.sum(sweep_diffs * sweep_diffs)))
            if move <= move_tol:
                converged = True
                break
        diffs = arr - cent[labels]
        inertia = float(np.sum(diffs * diffs))
    return KMeansResult(cent, labels, inertia, n_iter, converged,
                        inertia_history=tuple(history))
