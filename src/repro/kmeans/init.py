"""Centroid initialisation schemes.

The paper initialises k-means "with prior-knowledge from the equal-width
histogram to achieve more reliable segmentation results"; that scheme is
:func:`histogram_init`.  k-means++ and uniform random are provided as
comparison points for the initialisation ablation bench.
"""

from __future__ import annotations

import numpy as np

__all__ = ["histogram_init", "kmeanspp_init", "random_init", "warm_start_init"]


def _as_1d(data: np.ndarray) -> np.ndarray:
    arr = np.asarray(data, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot initialise centroids from empty data")
    return arr


def _pad_unique(centroids: np.ndarray, k: int, lo: float, hi: float) -> np.ndarray:
    """Deduplicate and pad a centroid set to exactly ``k`` distinct values."""
    uniq = np.unique(centroids)
    if uniq.size >= k:
        return uniq[:k]
    # Pad with evenly spaced probes over the data range, skipping collisions.
    if hi <= lo:
        hi = lo + 1.0
    pad = np.linspace(lo, hi, num=k + 2)[1:-1]
    merged = np.unique(np.concatenate([uniq, pad]))
    if merged.size >= k:
        return merged[:k]
    # Degenerate range: fall back to tiny deterministic jitter around lo.
    extra = lo + (hi - lo + 1.0) * 1e-9 * np.arange(1, k - merged.size + 1)
    return np.sort(np.concatenate([merged, extra]))[:k]


def histogram_init(data: np.ndarray, k: int, oversample: int = 4) -> np.ndarray:
    """Seed ``k`` centroids from an equal-width histogram of the data.

    Builds an equal-width histogram with ``oversample * k`` bins and places
    the initial centroids at the centers of the ``k`` most populated bins.
    Dense regions of the change-ratio distribution therefore start with
    nearby centroids, which is exactly the prior the paper exploits.

    Returns a sorted array of ``k`` distinct centroids.
    """
    arr = _as_1d(data)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        return _pad_unique(np.array([lo]), k, lo, hi)
    nbins = max(k * max(oversample, 1), k)
    if lo + (hi - lo) / nbins == lo:
        # Range too narrow for this many finite bins (float underflow):
        # seed from evenly spaced quantiles instead.
        qs = np.quantile(arr, np.linspace(0.0, 1.0, k))
        return _pad_unique(qs, k, lo, hi)
    counts, edges = np.histogram(arr, bins=nbins, range=(lo, hi))
    centers = 0.5 * (edges[:-1] + edges[1:])
    occupied = np.flatnonzero(counts > 0)
    # Rank occupied bins by population, keep the k densest, sorted by position.
    top = occupied[np.argsort(counts[occupied], kind="stable")[::-1][:k]]
    centroids = np.sort(centers[top])
    return _pad_unique(centroids, k, lo, hi)


def warm_start_init(data: np.ndarray, k: int, cached: np.ndarray) -> np.ndarray:
    """Seed ``k`` centroids from a previously fitted centroid set.

    Used by the adaptive reuse engine: when a cached bin model has drifted
    out of tolerance, Lloyd restarts from the *cached* centers (clipped to
    the new data range) instead of a cold histogram seed -- the change-ratio
    distribution of consecutive timesteps rarely moves far, so warm starts
    converge in a fraction of the sweeps.

    Returns a sorted array of ``k`` distinct centroids.
    """
    arr = _as_1d(data)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cached = np.asarray(cached, dtype=np.float64).ravel()
    cached = cached[np.isfinite(cached)]
    lo, hi = float(arr.min()), float(arr.max())
    if cached.size == 0:
        return histogram_init(arr, k)
    # Clip stale centers into the new range so every seed can own points.
    seeds = np.clip(cached, lo, hi)
    return _pad_unique(np.sort(seeds), k, lo, hi)


def kmeanspp_init(data: np.ndarray, k: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii) on 1-D data.

    Each new centroid is drawn with probability proportional to the squared
    distance to the nearest centroid already chosen.
    """
    arr = _as_1d(data)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = rng if rng is not None else np.random.default_rng(0)
    centroids = np.empty(k, dtype=np.float64)
    centroids[0] = arr[rng.integers(arr.size)]
    d2 = (arr - centroids[0]) ** 2
    for i in range(1, k):
        total = d2.sum()
        if total <= 0.0:
            # All remaining distances zero: data has < k distinct values.
            centroids[i:] = centroids[i - 1]
            break
        probs = d2 / total
        centroids[i] = arr[rng.choice(arr.size, p=probs)]
        np.minimum(d2, (arr - centroids[i]) ** 2, out=d2)
    lo, hi = float(arr.min()), float(arr.max())
    return _pad_unique(np.sort(centroids), k, lo, hi)


def random_init(data: np.ndarray, k: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Uniform random sample of ``k`` data points as centroids."""
    arr = _as_1d(data)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = rng.choice(arr.size, size=min(k, arr.size), replace=False)
    lo, hi = float(arr.min()), float(arr.max())
    return _pad_unique(np.sort(arr[idx]), k, lo, hi)
